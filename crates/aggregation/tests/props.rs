//! Property tests: aggregation invariants and disaggregation round-trips.

use flexoffers_aggregation::{aggregate, group_indices, GroupingParams};
use flexoffers_model::{FlexOffer, Slice};
use flexoffers_timeseries::ops::sum_series;
use proptest::prelude::*;

fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,
        0i64..4,
        prop::collection::vec((-3i64..4, 0i64..3), 1..4),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(tes, window, raw, cmin_pos, cmax_pos)| {
            let slices: Vec<Slice> = raw
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            let pmin: i64 = slices.iter().map(Slice::min).sum();
            let pmax: i64 = slices.iter().map(Slice::max).sum();
            let cmin = pmin + ((pmax - pmin) as f64 * cmin_pos) as i64;
            let cmax = cmin + ((pmax - cmin) as f64 * cmax_pos) as i64;
            FlexOffer::with_totals(tes, tes + window, slices, cmin, cmax).unwrap()
        })
}

fn arb_group() -> impl Strategy<Value = Vec<FlexOffer>> {
    prop::collection::vec(arb_flexoffer(), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aggregate_structure_invariants(group in arb_group()) {
        let agg = aggregate(&group).unwrap();
        let fo = agg.flexoffer();
        // Time flexibility is the member minimum.
        let min_tf = group.iter().map(FlexOffer::time_flexibility).min().unwrap();
        prop_assert_eq!(fo.time_flexibility(), min_tf);
        // Totals and profile bounds sum.
        prop_assert_eq!(fo.total_min(), group.iter().map(FlexOffer::total_min).sum::<i64>());
        prop_assert_eq!(fo.total_max(), group.iter().map(FlexOffer::total_max).sum::<i64>());
        prop_assert_eq!(fo.profile_min(), group.iter().map(FlexOffer::profile_min).sum::<i64>());
        prop_assert_eq!(fo.profile_max(), group.iter().map(FlexOffer::profile_max).sum::<i64>());
        // Earliest start is the member minimum.
        prop_assert_eq!(
            fo.earliest_start(),
            group.iter().map(FlexOffer::earliest_start).min().unwrap()
        );
    }

    #[test]
    fn member_sum_assignments_are_valid_for_aggregate(group in arb_group(), seed in 0u64..100) {
        // The converse of disaggregation: any combination of member
        // assignments at a shared alignment produces a valid aggregate
        // assignment. (This direction never fails — the overestimation only
        // goes the other way.)
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let agg = aggregate(&group).unwrap();
        let fo = agg.flexoffer();
        let t = rng.gen_range(fo.earliest_start()..=fo.latest_start());
        let mut values = vec![0i64; fo.slice_count()];
        for (m, off) in group.iter().zip(agg.offsets()) {
            let a = m.sample_assignment(&mut rng);
            // Re-anchor the sampled assignment at the shared alignment.
            for (j, v) in a.values().iter().enumerate() {
                values[(*off + j as i64) as usize] += v;
            }
        }
        let combined = flexoffers_model::Assignment::new(t, values);
        prop_assert!(fo.is_valid_assignment(&combined),
            "member combination invalid for aggregate: {}", combined);
    }

    #[test]
    fn disaggregation_round_trips_when_realizable(group in arb_group()) {
        let agg = aggregate(&group).unwrap();
        for a in agg.flexoffer().assignments().take(64) {
            match agg.disaggregate(&a) {
                Ok(parts) => {
                    prop_assert_eq!(parts.len(), group.len());
                    for (m, p) in group.iter().zip(&parts) {
                        prop_assert!(m.is_valid_assignment(p));
                    }
                    let series: Vec<_> = parts.iter().map(|p| p.as_series()).collect();
                    prop_assert_eq!(sum_series(series.iter()), a.as_series());
                }
                Err(flexoffers_aggregation::DisaggregationError::Unrealizable) => {
                    // Legal: the aggregate overestimates. The exact flow
                    // solver must agree with the combined solver.
                    prop_assert!(agg.disaggregate_flow(&a).is_err());
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }

    #[test]
    fn greedy_success_implies_flow_success(group in arb_group()) {
        let agg = aggregate(&group).unwrap();
        for a in agg.flexoffer().assignments().take(32) {
            if agg.disaggregate_greedy(&a).is_ok() {
                prop_assert!(agg.disaggregate_flow(&a).is_ok());
            }
        }
    }

    #[test]
    fn default_totals_make_every_assignment_realizable(
        raw in prop::collection::vec(
            (0i64..3, 0i64..3, prop::collection::vec((-3i64..3, 0i64..3), 1..3)), 1..4)
    ) {
        // Without explicit total constraints the transportation problem
        // decomposes per column and is always feasible.
        let group: Vec<FlexOffer> = raw
            .into_iter()
            .map(|(tes, w, slices)| {
                FlexOffer::new(
                    tes,
                    tes + w,
                    slices
                        .into_iter()
                        .map(|(min, sw)| Slice::new(min, min + sw).unwrap())
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let agg = aggregate(&group).unwrap();
        for a in agg.flexoffer().assignments().take(64) {
            prop_assert!(agg.disaggregate(&a).is_ok(), "unrealizable {a}");
        }
    }

    #[test]
    fn grouping_partitions_and_respects_tolerances(
        offers in prop::collection::vec(arb_flexoffer(), 0..8),
        est in 0i64..4,
        tft in 0i64..4,
    ) {
        let params = GroupingParams::with_tolerances(est, tft);
        let groups = group_indices(&offers, &params);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..offers.len()).collect::<Vec<_>>());
        for g in &groups {
            let first = &offers[g[0]];
            for &i in g {
                prop_assert!(offers[i].earliest_start() - first.earliest_start() <= est);
                prop_assert!(
                    (offers[i].time_flexibility() - first.time_flexibility()).abs() <= tft
                );
            }
        }
    }
}
