//! Flex-offer aggregation and disaggregation.
//!
//! Scenario 1 of Valsomatzis et al. (EDBT 2015): scheduling complexity is
//! tamed by aggregating many small flex-offers into few large ones while
//! "retaining as much as possible of their flexibility" — and the paper's
//! measures exist precisely to quantify what aggregation loses. This crate
//! implements the machinery the paper references:
//!
//! * **start-alignment aggregation** ([`start_align`]) after Šikšnys et al.
//!   (SSDBM 2012): members are locked at their earliest-start alignment, the
//!   aggregate keeps the *minimum* time flexibility and the *sum* of energy
//!   profiles and total constraints;
//! * **tolerance-based grouping** ([`group`]): partitioning a portfolio by
//!   earliest-start and time-flexibility tolerances before aggregating, the
//!   knob the flexibility-loss experiment (EXPERIMENTS.md, E1) sweeps;
//! * **disaggregation** ([`disaggregate`]): translating an assignment of the
//!   aggregate back into one valid assignment per member — greedy with
//!   feasibility lookahead, falling back to an exact feasible-flow solver
//!   ([`flow`]) because aggregates of members with heterogeneous *total*
//!   constraints can admit assignments that no member combination realises
//!   (an overestimation documented in the tests);
//! * **balance-aware grouping** ([`balance`]) after Valsomatzis et al.
//!   (DARE 2014): pairing production with consumption so aggregates
//!   pre-balance — which makes them *mixed* and demonstrates Section 4's
//!   point that area measures cannot value such aggregates;
//! * **flexibility-loss evaluation** ([`loss`]) across all eight measures;
//! * **measure-aware aggregation** ([`measure_aware`]) — the paper's future
//!   work (§6): grouping whose merge criterion *is* a flexibility measure,
//!   bounding the measured loss instead of fixed tolerances.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod balance;
pub mod disaggregate;
pub mod error;
pub mod flow;
pub mod group;
pub mod loss;
pub mod measure_aware;
pub mod start_align;

pub use balance::{balance_aggregate, balance_groups};
pub use error::{AggregationError, DisaggregationError};
pub use group::{group_indices, group_keys, group_offers, GroupingParams, KeyIndex};
pub use loss::{flexibility_loss, loss_table, LossReport};
pub use measure_aware::{MeasureAwareError, MeasureAwareGrouping};
pub use start_align::{aggregate, aggregate_indices, aggregate_portfolio, Aggregate};
