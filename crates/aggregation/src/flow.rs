//! A small feasible-flow solver (Dinic's algorithm plus the standard
//! lower-bound transformation), the exact engine behind
//! [`disaggregate`](crate::disaggregate).
//!
//! Disaggregation is a transportation problem: member-slice values must sit
//! in their slice ranges, member totals in their `[cmin, cmax]` windows, and
//! column sums must equal the aggregated assignment. Greedy splitting can
//! paint itself into a corner; a feasible flow either produces an exact
//! split or proves none exists.

/// A directed flow network with per-edge lower and upper bounds.
#[derive(Debug)]
pub struct FlowNetwork {
    /// Forward/backward edge pairs: edge `2k` is forward, `2k+1` its
    /// residual twin.
    to: Vec<usize>,
    cap: Vec<i64>,
    adj: Vec<Vec<usize>>,
    /// Node excess induced by the lower-bound transformation.
    excess: Vec<i64>,
    /// For each original (caller-visible) edge: internal index and lower
    /// bound, to reconstruct flows.
    originals: Vec<(usize, i64)>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes (indices `0..n`).
    pub fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
            excess: vec![0; n],
            originals: Vec::new(),
        }
    }

    fn push_edge(&mut self, u: usize, v: usize, cap: i64) -> usize {
        let idx = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.adj[u].push(idx);
        self.to.push(u);
        self.cap.push(0);
        self.adj[v].push(idx + 1);
        idx
    }

    /// Adds an edge `u -> v` carrying between `lower` and `upper` units.
    /// Returns the edge's id for [`FlowNetwork::solve`]'s flow vector.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, lower: i64, upper: i64) -> usize {
        assert!(lower <= upper, "edge bounds inverted: [{lower}, {upper}]");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        let idx = self.push_edge(u, v, upper - lower);
        self.excess[v] += lower;
        self.excess[u] -= lower;
        let original_id = self.originals.len();
        self.originals.push((idx, lower));
        original_id
    }

    /// Finds a feasible `s -> t` flow respecting all bounds. Returns the
    /// per-original-edge flows, or `None` if no feasible flow exists.
    pub fn solve(mut self, s: usize, t: usize) -> Option<Vec<i64>> {
        let n = self.adj.len();
        let super_source = n;
        let super_sink = n + 1;
        self.adj.push(Vec::new());
        self.adj.push(Vec::new());
        self.excess.push(0);
        self.excess.push(0);

        // Close the circulation in both directions: production-side
        // networks carry *negative* lower bounds, whose transformed demands
        // can require net flow from t back to s as well as s to t.
        self.push_edge(t, s, i64::MAX / 4);
        self.push_edge(s, t, i64::MAX / 4);

        let mut required = 0;
        for node in 0..n {
            let e = self.excess[node];
            if e > 0 {
                self.push_edge(super_source, node, e);
                required += e;
            } else if e < 0 {
                self.push_edge(node, super_sink, -e);
            }
        }

        let initial_caps = self.cap.clone();
        let pushed = self.dinic(super_source, super_sink);
        if pushed != required {
            return None;
        }
        Some(
            self.originals
                .iter()
                .map(|&(idx, lower)| lower + (initial_caps[idx] - self.cap[idx]))
                .collect(),
        )
    }

    fn dinic(&mut self, s: usize, t: usize) -> i64 {
        let n = self.adj.len();
        let mut total = 0;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.to[e];
                    if self.cap[e] > 0 && level[v] == usize::MAX {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] == usize::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, i64::MAX / 4, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[usize], iter: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let e = self.adj[u][iter[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[e]), level, iter);
                if pushed > 0 {
                    self.cap[e] -= pushed;
                    self.cap[e ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path_flow() {
        // s -> a -> t, demand forced by lower bounds.
        let mut net = FlowNetwork::new(3);
        let e1 = net.add_edge(0, 1, 2, 5);
        let e2 = net.add_edge(1, 2, 2, 5);
        let flows = net.solve(0, 2).expect("feasible");
        assert!(flows[e1] >= 2 && flows[e1] <= 5);
        assert_eq!(flows[e1], flows[e2]);
    }

    #[test]
    fn infeasible_lower_bounds_detected() {
        // Edge demands at least 3 but downstream capacity is 1.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3, 5);
        net.add_edge(1, 2, 0, 1);
        assert!(net.solve(0, 2).is_none());
    }

    #[test]
    fn split_across_parallel_paths() {
        // s -> {a, b} -> t, both paths carrying at least 1: conservation
        // holds per path and lower bounds are honoured.
        let mut net = FlowNetwork::new(4);
        let ea = net.add_edge(0, 1, 1, 3);
        let eb = net.add_edge(0, 2, 1, 3);
        let eat = net.add_edge(1, 3, 1, 3);
        let ebt = net.add_edge(2, 3, 1, 3);
        let flows = net.solve(0, 3).expect("feasible");
        assert!(flows[ea] >= 1 && flows[eb] >= 1);
        assert_eq!(flows[ea], flows[eat]);
        assert_eq!(flows[eb], flows[ebt]);
    }

    #[test]
    fn exact_column_demand() {
        // Transportation shape: two suppliers, one column demanding
        // exactly 4; supplier totals bounded [0,2] and [0,3].
        let mut net = FlowNetwork::new(5);
        let s = 0;
        let m1 = 1;
        let m2 = 2;
        let col = 3;
        let t = 4;
        net.add_edge(s, m1, 0, 2);
        net.add_edge(s, m2, 0, 3);
        let x1 = net.add_edge(m1, col, 0, 4);
        let x2 = net.add_edge(m2, col, 0, 4);
        net.add_edge(col, t, 4, 4);
        let flows = net.solve(s, t).expect("feasible");
        assert_eq!(flows[x1] + flows[x2], 4);
        assert!(flows[x1] <= 2 && flows[x2] <= 3);
    }

    #[test]
    fn all_negative_bounds_feasible() {
        // Production-shaped problem: every edge must carry exactly -1.
        let mut net = FlowNetwork::new(3);
        let e1 = net.add_edge(0, 1, -1, -1);
        let e2 = net.add_edge(1, 2, -1, -1);
        let flows = net.solve(0, 2).expect("feasible negative circulation");
        assert_eq!(flows[e1], -1);
        assert_eq!(flows[e2], -1);
    }

    #[test]
    fn mixed_sign_bounds_feasible() {
        // One member supplies [-2, 1] into a column demanding exactly -1.
        let mut net = FlowNetwork::new(3);
        let e1 = net.add_edge(0, 1, -2, 1);
        let e2 = net.add_edge(1, 2, -1, -1);
        let flows = net.solve(0, 2).expect("feasible");
        assert_eq!(flows[e1], -1);
        assert_eq!(flows[e2], -1);
    }

    #[test]
    fn exact_demand_infeasible_when_supply_short() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 0, 1);
        net.add_edge(1, 2, 0, 5);
        net.add_edge(2, 3, 3, 3); // demand 3, supply caps at 1
        assert!(net.solve(0, 3).is_none());
    }

    #[test]
    #[should_panic(expected = "edge bounds inverted")]
    fn inverted_bounds_panic() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5, 2);
    }
}
