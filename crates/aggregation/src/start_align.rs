//! Start-alignment aggregation (Šikšnys et al., SSDBM 2012).

use serde::{Deserialize, Serialize};

use flexoffers_model::{FlexOffer, Slice, TimeSlot};

use crate::error::AggregationError;
use crate::group::GroupingParams;

/// A flex-offer aggregated from a group of members, retaining enough
/// bookkeeping to disaggregate assignments back to them.
///
/// Construction locks every member at its earliest-start alignment: member
/// `i` is anchored `offset_i = tes_i - min_j tes_j` slots into the
/// aggregate's profile. Shifting the aggregate's start by `d` shifts every
/// member by the same `d`, so the aggregate's time flexibility is the
/// *minimum* member time flexibility; slice ranges and total constraints
/// sum. The aggregate is therefore conservative in time but — because slice
/// sums and total sums relax cross-member coupling — can *overestimate*
/// joint energy flexibility; see
/// [`Aggregate::disaggregate`](crate::disaggregate) for how that surfaces.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    flexoffer: FlexOffer,
    members: Vec<FlexOffer>,
    offsets: Vec<TimeSlot>,
}

impl Aggregate {
    /// The aggregated flex-offer itself.
    pub fn flexoffer(&self) -> &FlexOffer {
        &self.flexoffer
    }

    /// The member flex-offers, in input order.
    pub fn members(&self) -> &[FlexOffer] {
        &self.members
    }

    /// Per-member profile offsets relative to the aggregate's earliest
    /// start.
    pub fn offsets(&self) -> &[TimeSlot] {
        &self.offsets
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the aggregate has no members (never constructed by
    /// [`aggregate`], which rejects empty groups).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// A new aggregate with `member` added — incremental maintenance for
    /// aggregators that receive flex-offers one at a time (the MIRABEL
    /// setting). Start-alignment state is a pure function of the member
    /// set, so this rebuilds; the method exists to keep call sites
    /// intention-revealing and to centralise the invariant.
    pub fn with_member(&self, member: FlexOffer) -> Self {
        let mut members = self.members.clone();
        members.push(member);
        aggregate(&members).expect("non-empty by construction")
    }

    /// A new aggregate with the member at `index` removed, or `None` when
    /// removing the last member (an empty aggregate is not a thing).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn without_member(&self, index: usize) -> Option<Self> {
        assert!(index < self.members.len(), "member index out of bounds");
        if self.members.len() == 1 {
            return None;
        }
        let mut members = self.members.clone();
        members.remove(index);
        Some(aggregate(&members).expect("still non-empty"))
    }
}

/// Aggregates the group selected by `indices` out of a shared offer slice —
/// the parallel-safe grouping entry point: workers aggregating disjoint
/// index groups share `offers` immutably and touch no other state, so a
/// batch engine can fan groups out across threads and merge results in
/// group order.
///
/// # Panics
///
/// Panics if any index is out of bounds for `offers`.
pub fn aggregate_indices(
    offers: &[FlexOffer],
    indices: &[usize],
) -> Result<Aggregate, AggregationError> {
    let members: Vec<FlexOffer> = indices.iter().map(|&i| offers[i].clone()).collect();
    aggregate(&members)
}

/// Aggregates a group of flex-offers by start alignment.
///
/// * `tes_A = min(tes_i)`, `tls_A = tes_A + min(tf_i)`;
/// * slice `k` sums the member slices anchored there (absent members
///   contribute nothing);
/// * `cmin_A = sum(cmin_i)`, `cmax_A = sum(cmax_i)`.
pub fn aggregate(members: &[FlexOffer]) -> Result<Aggregate, AggregationError> {
    if members.is_empty() {
        return Err(AggregationError::EmptyGroup);
    }
    let anchor = members
        .iter()
        .map(FlexOffer::earliest_start)
        .min()
        .expect("non-empty");
    let min_tf = members
        .iter()
        .map(FlexOffer::time_flexibility)
        .min()
        .expect("non-empty");
    let offsets: Vec<TimeSlot> = members
        .iter()
        .map(|m| m.earliest_start() - anchor)
        .collect();
    let profile_len = members
        .iter()
        .zip(&offsets)
        .map(|(m, off)| off + m.slice_count() as i64)
        .max()
        .expect("non-empty");

    let mut mins = vec![0i64; profile_len as usize];
    let mut maxs = vec![0i64; profile_len as usize];
    for (m, off) in members.iter().zip(&offsets) {
        for (j, s) in m.slices().iter().enumerate() {
            let k = (*off + j as i64) as usize;
            mins[k] += s.min();
            maxs[k] += s.max();
        }
    }
    let slices: Vec<Slice> = mins
        .into_iter()
        .zip(maxs)
        .map(|(lo, hi)| Slice::new(lo, hi).expect("sum of ordered ranges is ordered"))
        .collect();
    let total_min = members.iter().map(FlexOffer::total_min).sum();
    let total_max = members.iter().map(FlexOffer::total_max).sum();
    let flexoffer = FlexOffer::with_totals(anchor, anchor + min_tf, slices, total_min, total_max)
        .expect("aggregation preserves flex-offer invariants");
    Ok(Aggregate {
        flexoffer,
        members: members.to_vec(),
        offsets,
    })
}

/// Groups a portfolio with `params` and aggregates each group; singleton
/// groups still become (trivial) aggregates, keeping the output uniform.
pub fn aggregate_portfolio(offers: &[FlexOffer], params: &GroupingParams) -> Vec<Aggregate> {
    crate::group::group_indices(offers, params)
        .into_iter()
        .map(|idx| aggregate_indices(offers, &idx).expect("grouping never yields empty groups"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_group_rejected() {
        assert_eq!(aggregate(&[]), Err(AggregationError::EmptyGroup));
    }

    #[test]
    fn aggregate_indices_matches_direct_aggregation() {
        let offers = vec![
            fo(0, 2, vec![(1, 3)]),
            fo(1, 3, vec![(0, 2)]),
            fo(5, 9, vec![(2, 4)]),
        ];
        let by_index = aggregate_indices(&offers, &[0, 1]).unwrap();
        let direct = aggregate(&offers[..2]).unwrap();
        assert_eq!(by_index, direct);
        assert_eq!(
            aggregate_indices(&offers, &[]),
            Err(AggregationError::EmptyGroup)
        );
    }

    #[test]
    fn singleton_aggregate_is_identity() {
        let f = fo(2, 5, vec![(1, 3), (0, 2)]);
        let a = aggregate(std::slice::from_ref(&f)).unwrap();
        assert_eq!(a.flexoffer(), &f);
        assert_eq!(a.offsets(), &[0]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn aligned_members_sum_profiles() {
        let f = fo(0, 2, vec![(1, 2), (0, 1)]);
        let g = fo(0, 4, vec![(2, 3), (1, 1)]);
        let a = aggregate(&[f, g]).unwrap();
        let agg = a.flexoffer();
        // Time flexibility is the minimum: min(2, 4) = 2.
        assert_eq!(agg.earliest_start(), 0);
        assert_eq!(agg.time_flexibility(), 2);
        // Profiles sum slice-wise.
        assert_eq!(agg.slices()[0], Slice::new(3, 5).unwrap());
        assert_eq!(agg.slices()[1], Slice::new(1, 2).unwrap());
        // Totals sum.
        assert_eq!(agg.total_min(), 1 + 3);
        assert_eq!(agg.total_max(), 3 + 4);
    }

    #[test]
    fn offset_members_extend_profile() {
        let early = fo(0, 3, vec![(1, 1)]);
        let late = fo(2, 5, vec![(4, 4), (2, 2)]);
        let a = aggregate(&[early, late]).unwrap();
        let agg = a.flexoffer();
        assert_eq!(a.offsets(), &[0, 2]);
        assert_eq!(agg.slice_count(), 4);
        assert_eq!(agg.slices()[0], Slice::fixed(1));
        assert_eq!(agg.slices()[1], Slice::fixed(0));
        assert_eq!(agg.slices()[2], Slice::fixed(4));
        assert_eq!(agg.slices()[3], Slice::fixed(2));
    }

    #[test]
    fn every_aggregate_start_maps_members_into_their_windows() {
        let f = fo(1, 4, vec![(0, 2)]);
        let g = fo(3, 5, vec![(1, 3)]);
        let a = aggregate(&[f.clone(), g.clone()]).unwrap();
        let agg = a.flexoffer();
        for t in agg.earliest_start()..=agg.latest_start() {
            for (m, off) in a.members().iter().zip(a.offsets()) {
                let member_start = t + off;
                assert!(member_start >= m.earliest_start());
                assert!(member_start <= m.latest_start());
            }
        }
    }

    #[test]
    fn time_flexibility_loss_is_min_rule() {
        // The aggregate keeps min(tf) = 0: full loss for the flexible one.
        let rigid = fo(3, 3, vec![(1, 1)]);
        let flexible = fo(0, 9, vec![(1, 1)]);
        let a = aggregate(&[rigid, flexible]).unwrap();
        assert_eq!(a.flexoffer().time_flexibility(), 0);
    }

    #[test]
    fn energy_flexibility_is_preserved_by_summation() {
        let f = fo(0, 2, vec![(0, 3)]);
        let g = fo(0, 2, vec![(1, 5)]);
        let a = aggregate(&[f.clone(), g.clone()]).unwrap();
        assert_eq!(
            a.flexoffer().energy_flexibility(),
            f.energy_flexibility() + g.energy_flexibility()
        );
    }

    #[test]
    fn mixed_aggregate_from_production_and_consumption() {
        let consumer = fo(0, 2, vec![(2, 4)]);
        let producer = fo(0, 2, vec![(-3, -1)]);
        let a = aggregate(&[consumer, producer]).unwrap();
        assert_eq!(a.flexoffer().sign(), flexoffers_model::SignClass::Mixed);
        assert_eq!(a.flexoffer().slices()[0], Slice::new(-1, 3).unwrap());
    }

    #[test]
    fn with_member_equals_batch_aggregation() {
        let a = fo(0, 2, vec![(1, 2)]);
        let b = fo(1, 4, vec![(0, 3)]);
        let c = fo(0, 3, vec![(2, 2), (1, 1)]);
        let incremental = aggregate(std::slice::from_ref(&a))
            .unwrap()
            .with_member(b.clone())
            .with_member(c.clone());
        let batch = aggregate(&[a, b, c]).unwrap();
        assert_eq!(incremental, batch);
    }

    #[test]
    fn without_member_inverts_with_member() {
        let a = fo(0, 2, vec![(1, 2)]);
        let b = fo(1, 4, vec![(0, 3)]);
        let base = aggregate(std::slice::from_ref(&a)).unwrap();
        let grown = base.with_member(b);
        let shrunk = grown.without_member(1).expect("two members");
        assert_eq!(shrunk, base);
        assert_eq!(shrunk.without_member(0), None);
    }

    #[test]
    #[should_panic(expected = "member index out of bounds")]
    fn without_member_bounds_checked() {
        let a = aggregate(&[fo(0, 2, vec![(1, 2)])]).unwrap();
        let _ = a.without_member(5);
    }

    #[test]
    fn serde_round_trip() {
        let a = aggregate(&[fo(0, 2, vec![(1, 2)]), fo(1, 3, vec![(0, 1)])]).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        let back: Aggregate = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
