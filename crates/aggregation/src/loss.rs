//! Flexibility-loss evaluation: the quantity Scenario 1 minimises.
//!
//! "For all the aggregation techniques, it is essential to quantify and then
//! to minimize flexibility losses, and therefore a flexibility measure is
//! needed" (paper, Scenario 1). A loss report compares a measure over the
//! original portfolio with the same measure over the aggregated portfolio.

use flexoffers_measures::{all_measures, Measure, MeasureError};
use flexoffers_model::FlexOffer;

use crate::start_align::Aggregate;

/// A before/after comparison of one measure across aggregation.
#[derive(Clone, Debug, PartialEq)]
pub struct LossReport {
    /// The measure's Table 1 column name.
    pub measure: String,
    /// Set-level value over the original flex-offers.
    pub before: f64,
    /// Set-level value over the aggregated flex-offers.
    pub after: f64,
}

impl LossReport {
    /// Absolute flexibility lost (positive) or gained (negative —
    /// aggregation can *overestimate*, e.g. energy flexibility sums while
    /// cross-member coupling is dropped).
    pub fn absolute_loss(&self) -> f64 {
        self.before - self.after
    }

    /// Loss as a fraction of the pre-aggregation value; 0 when `before` is
    /// zero.
    pub fn relative_loss(&self) -> f64 {
        if self.before == 0.0 {
            0.0
        } else {
            self.absolute_loss() / self.before
        }
    }
}

/// Evaluates one measure before and after aggregation.
pub fn flexibility_loss(
    measure: &dyn Measure,
    before: &[FlexOffer],
    aggregates: &[Aggregate],
) -> Result<LossReport, MeasureError> {
    let after_offers: Vec<FlexOffer> = aggregates.iter().map(|a| a.flexoffer().clone()).collect();
    Ok(LossReport {
        measure: measure.short_name().to_owned(),
        before: measure.of_set(before)?,
        after: measure.of_set(&after_offers)?,
    })
}

/// Loss reports for all eight measures; measures that do not apply to the
/// (possibly mixed) aggregates report their error instead.
pub fn loss_table(
    before: &[FlexOffer],
    aggregates: &[Aggregate],
) -> Vec<Result<LossReport, MeasureError>> {
    all_measures()
        .iter()
        .map(|m| flexibility_loss(m.as_ref(), before, aggregates))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupingParams;
    use crate::start_align::{aggregate, aggregate_portfolio};
    use flexoffers_measures::TimeFlexibility;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn time_flexibility_loss_under_min_rule() {
        let offers = vec![fo(0, 1, vec![(1, 2)]), fo(0, 5, vec![(1, 2)])];
        let aggs = vec![aggregate(&offers).unwrap()];
        let report = flexibility_loss(&TimeFlexibility, &offers, &aggs).unwrap();
        // Before: 1 + 5 = 6; after: min = 1. Loss 5, relative 5/6.
        assert_eq!(report.before, 6.0);
        assert_eq!(report.after, 1.0);
        assert_eq!(report.absolute_loss(), 5.0);
        assert!((report.relative_loss() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn identical_offers_lose_no_time_flexibility() {
        let offers = vec![fo(0, 3, vec![(1, 2)]); 4];
        let aggs = vec![aggregate(&offers).unwrap()];
        let report = flexibility_loss(&TimeFlexibility, &offers, &aggs).unwrap();
        // Before: 4 * 3; after: one aggregate with tf 3.
        assert_eq!(report.before, 12.0);
        assert_eq!(report.after, 3.0);
        // The *sum* semantics sees a loss because 4 independent windows
        // became one shared window — which is real: the members can no
        // longer shift independently.
        assert_eq!(report.absolute_loss(), 9.0);
    }

    #[test]
    fn finer_grouping_loses_less() {
        let offers = vec![
            fo(0, 0, vec![(1, 2)]),
            fo(0, 8, vec![(1, 2)]),
            fo(9, 9, vec![(1, 2)]),
            fo(9, 17, vec![(1, 2)]),
        ];
        let coarse = aggregate_portfolio(&offers, &GroupingParams::single_group());
        let fine = aggregate_portfolio(&offers, &GroupingParams::strict());
        let coarse_loss = flexibility_loss(&TimeFlexibility, &offers, &coarse)
            .unwrap()
            .absolute_loss();
        let fine_loss = flexibility_loss(&TimeFlexibility, &offers, &fine)
            .unwrap()
            .absolute_loss();
        assert!(fine_loss <= coarse_loss);
        // Strict grouping keeps every offer separate here: zero loss.
        assert_eq!(fine_loss, 0.0);
    }

    #[test]
    fn loss_table_covers_all_measures() {
        let offers = vec![fo(0, 2, vec![(1, 3)]), fo(1, 3, vec![(0, 2)])];
        let aggs = vec![aggregate(&offers).unwrap()];
        let table = loss_table(&offers, &aggs);
        assert_eq!(table.len(), 8);
        for entry in &table {
            let report = entry.as_ref().expect("pure consumption applies everywhere");
            assert!(report.before.is_finite() && report.after.is_finite());
        }
    }

    #[test]
    fn area_measures_error_on_mixed_aggregates_under_rejecting_policy() {
        use flexoffers_measures::AbsoluteAreaFlexibility;
        let offers = vec![fo(0, 2, vec![(2, 4)]), fo(0, 2, vec![(-4, -2)])];
        let aggs = vec![aggregate(&offers).unwrap()];
        let strict = AbsoluteAreaFlexibility::rejecting_mixed();
        assert!(flexibility_loss(&strict, &offers, &aggs).is_err());
    }

    #[test]
    fn zero_before_gives_zero_relative_loss() {
        let r = LossReport {
            measure: "Time".to_owned(),
            before: 0.0,
            after: 0.0,
        };
        assert_eq!(r.relative_loss(), 0.0);
    }
}
