//! Disaggregation: splitting an aggregate's assignment into one valid
//! assignment per member.
//!
//! The aggregate's slice ranges and totals are *sums* of the members', so an
//! aggregated assignment prescribes, per column, an amount the participating
//! member slices must jointly supply, and, overall, a total each member must
//! keep inside its own `[cmin, cmax]`. That is a transportation problem with
//! interval bounds.
//!
//! Two solvers:
//!
//! * [`Aggregate::disaggregate_greedy`] — one left-to-right pass
//!   maintaining per-member feasibility invariants (assigned-so-far plus the
//!   reachable range of the member's remaining slices must still intersect
//!   its total window). Fast, and complete in the common case, but the
//!   per-column surplus heuristic can strand *cross-member* feasibility.
//! * [`Aggregate::disaggregate_flow`] — an exact feasible-flow formulation
//!   ([`crate::flow`]); finds a split whenever one exists.
//!
//! [`Aggregate::disaggregate`] runs greedy first and falls back to flow, so
//! callers always get an exact answer at greedy speed in the common case.
//! When even the flow is infeasible the aggregate genuinely admits an
//! assignment its members cannot realise — start-alignment aggregation over
//! heterogeneous total constraints *overestimates* flexibility, a
//! phenomenon quantified in the loss experiments and demonstrated in the
//! tests below.

use flexoffers_model::{Assignment, Energy};

use crate::error::DisaggregationError;
use crate::flow::FlowNetwork;
use crate::start_align::Aggregate;

impl Aggregate {
    /// Splits `assignment` into one valid assignment per member (input
    /// order), trying greedy first and falling back to the exact flow
    /// solver.
    pub fn disaggregate(
        &self,
        assignment: &Assignment,
    ) -> Result<Vec<Assignment>, DisaggregationError> {
        self.check(assignment)?;
        match self.greedy_split(assignment) {
            Some(parts) => Ok(parts),
            None => self.flow_split(assignment),
        }
    }

    /// Greedy-only disaggregation; `Err(Unrealizable)` when the heuristic
    /// gets stuck (which does *not* prove infeasibility — use
    /// [`Aggregate::disaggregate`] for an exact answer).
    pub fn disaggregate_greedy(
        &self,
        assignment: &Assignment,
    ) -> Result<Vec<Assignment>, DisaggregationError> {
        self.check(assignment)?;
        self.greedy_split(assignment)
            .ok_or(DisaggregationError::Unrealizable)
    }

    /// Exact flow-based disaggregation.
    pub fn disaggregate_flow(
        &self,
        assignment: &Assignment,
    ) -> Result<Vec<Assignment>, DisaggregationError> {
        self.check(assignment)?;
        self.flow_split(assignment)
    }

    fn check(&self, assignment: &Assignment) -> Result<(), DisaggregationError> {
        self.flexoffer()
            .check_assignment(assignment)
            .map_err(DisaggregationError::InvalidAggregateAssignment)
    }

    /// One pass over columns. For member `i` at its slice `j`:
    /// `L = max(amin_j, cmin_i - assigned - suffix_max)` and
    /// `U = min(amax_j, cmax_i - assigned - suffix_min)` keep the member's
    /// own completion feasible; the column then needs
    /// `sum(L) <= v(k) <= sum(U)`, with the surplus `v(k) - sum(L)` dealt to
    /// members by descending slack.
    fn greedy_split(&self, assignment: &Assignment) -> Option<Vec<Assignment>> {
        let members = self.members();
        let offsets = self.offsets();
        let start = assignment.start();
        let mut values: Vec<Vec<Energy>> = members
            .iter()
            .map(|m| Vec::with_capacity(m.slice_count()))
            .collect();
        let mut assigned: Vec<Energy> = vec![0; members.len()];

        // Suffix sums of slice bounds per member: reachable range of the
        // *remaining* slices after position j.
        let suffix: Vec<Vec<(Energy, Energy)>> = members
            .iter()
            .map(|m| {
                let s = m.slice_count();
                let mut acc = vec![(0, 0); s + 1];
                for j in (0..s).rev() {
                    let sl = &m.slices()[j];
                    acc[j] = (acc[j + 1].0 + sl.min(), acc[j + 1].1 + sl.max());
                }
                acc
            })
            .collect();

        for (k, &v) in assignment.values().iter().enumerate() {
            let k = k as i64;
            // Participants: members whose profile covers column k.
            let mut bounds: Vec<(usize, Energy, Energy)> = Vec::new();
            let mut sum_lo = 0;
            let mut sum_hi = 0;
            for (i, m) in members.iter().enumerate() {
                let j = k - offsets[i];
                if j < 0 || j >= m.slice_count() as i64 {
                    continue;
                }
                let j = j as usize;
                let sl = &m.slices()[j];
                let (suf_min, suf_max) = suffix[i][j + 1];
                let lo = sl.min().max(m.total_min() - assigned[i] - suf_max);
                let hi = sl.max().min(m.total_max() - assigned[i] - suf_min);
                if lo > hi {
                    return None; // member-level invariant broken earlier
                }
                sum_lo += lo;
                sum_hi += hi;
                bounds.push((i, lo, hi));
            }
            if v < sum_lo || v > sum_hi {
                return None;
            }
            // Give everyone the floor, deal the surplus by descending slack.
            let mut surplus = v - sum_lo;
            bounds.sort_by_key(|&(_, lo, hi)| -(hi - lo));
            for &(i, lo, hi) in &bounds {
                let give = surplus.min(hi - lo);
                surplus -= give;
                assigned[i] += lo + give;
                values[i].push(lo + give);
            }
            debug_assert_eq!(surplus, 0, "surplus fits because v <= sum_hi");
        }
        let parts: Vec<Assignment> = members
            .iter()
            .zip(&values)
            .zip(offsets)
            .map(|((_, vals), off)| Assignment::new(start + off, vals.clone()))
            .collect();
        // Final validity check: totals may be violated only through a bug;
        // keep the guard cheap and unconditional.
        if members
            .iter()
            .zip(&parts)
            .all(|(m, a)| m.is_valid_assignment(a))
        {
            Some(parts)
        } else {
            None
        }
    }

    /// Exact split via feasible flow. Nodes: source, one per member, one per
    /// column, sink. Source->member edges carry the member's total window,
    /// member->column edges the slice ranges, column->sink edges exactly the
    /// aggregated value. Amounts may be negative, so every edge is shifted
    /// by its lower bound before entering the (non-negative) flow network —
    /// the [`FlowNetwork`] handles that internally via its lower-bound
    /// transformation.
    fn flow_split(&self, assignment: &Assignment) -> Result<Vec<Assignment>, DisaggregationError> {
        let members = self.members();
        let offsets = self.offsets();
        let n_members = members.len();
        let n_cols = assignment.len();
        let source = 0;
        let member_node = |i: usize| 1 + i;
        let col_node = |k: usize| 1 + n_members + k;
        let sink = 1 + n_members + n_cols;
        let mut net = FlowNetwork::new(sink + 1);

        for (i, m) in members.iter().enumerate() {
            net.add_edge(source, member_node(i), m.total_min(), m.total_max());
        }
        // member -> column edges, remembering (member, slice index, edge id).
        let mut slice_edges: Vec<(usize, usize, usize)> = Vec::new();
        for (i, m) in members.iter().enumerate() {
            for (j, sl) in m.slices().iter().enumerate() {
                let k = (offsets[i] + j as i64) as usize;
                let id = net.add_edge(member_node(i), col_node(k), sl.min(), sl.max());
                slice_edges.push((i, j, id));
            }
        }
        for (k, &v) in assignment.values().iter().enumerate() {
            net.add_edge(col_node(k), sink, v, v);
        }

        let flows = net
            .solve(source, sink)
            .ok_or(DisaggregationError::Unrealizable)?;

        let mut values: Vec<Vec<Energy>> =
            members.iter().map(|m| vec![0; m.slice_count()]).collect();
        for (i, j, id) in slice_edges {
            values[i][j] = flows[id];
        }
        Ok(members
            .iter()
            .zip(values)
            .zip(offsets)
            .map(|((_, vals), off)| Assignment::new(assignment.start() + off, vals))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::start_align::aggregate;
    use flexoffers_model::{FlexOffer, Slice};
    use flexoffers_timeseries::ops::sum_series;

    fn fo(tes: i64, tls: i64, slices: Vec<(i64, i64)>) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            slices
                .into_iter()
                .map(|(a, b)| Slice::new(a, b).unwrap())
                .collect(),
        )
        .unwrap()
    }

    fn assert_exact_split(agg: &Aggregate, a: &Assignment, parts: &[Assignment]) {
        assert_eq!(parts.len(), agg.len());
        for (m, p) in agg.members().iter().zip(parts) {
            assert!(m.is_valid_assignment(p), "member got invalid {p}");
        }
        let series: Vec<_> = parts.iter().map(Assignment::as_series).collect();
        let total = sum_series(series.iter());
        assert_eq!(total, a.as_series(), "parts must sum to the aggregate");
    }

    #[test]
    fn aligned_pair_round_trips() {
        let f = fo(0, 2, vec![(1, 3), (0, 2)]);
        let g = fo(0, 3, vec![(2, 4), (1, 1)]);
        let agg = aggregate(&[f, g]).unwrap();
        for a in agg.flexoffer().assignments() {
            let parts = agg.disaggregate(&a).expect("realizable");
            assert_exact_split(&agg, &a, &parts);
        }
    }

    #[test]
    fn offset_members_round_trip() {
        let early = fo(0, 2, vec![(1, 2)]);
        let late = fo(2, 4, vec![(0, 3)]);
        let agg = aggregate(&[early, late]).unwrap();
        for a in agg.flexoffer().assignments() {
            let parts = agg.disaggregate(&a).expect("realizable");
            assert_exact_split(&agg, &a, &parts);
            // Member starts respect the stored offsets.
            assert_eq!(parts[0].start(), a.start());
            assert_eq!(parts[1].start(), a.start() + 2);
        }
    }

    #[test]
    fn production_and_consumption_round_trip() {
        let consumer = fo(0, 1, vec![(1, 4)]);
        let producer = fo(0, 1, vec![(-3, -1)]);
        let agg = aggregate(&[consumer, producer]).unwrap();
        for a in agg.flexoffer().assignments() {
            let parts = agg.disaggregate(&a).expect("realizable");
            assert_exact_split(&agg, &a, &parts);
        }
    }

    #[test]
    fn heterogeneous_totals_create_unrealizable_assignments() {
        // Both members: two [0,1] slices. Member 1 must total exactly 2,
        // member 2 exactly 0. Aggregate: slices [0,2],[0,2], totals [2,2].
        // The aggregated assignment <2,0> is valid for the aggregate but
        // member 1 can put at most 1 into column 0 while member 2 must put
        // 0 everywhere -> column 0 cannot reach 2.
        let m1 = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 1).unwrap(), Slice::new(0, 1).unwrap()],
            2,
            2,
        )
        .unwrap();
        let m2 = FlexOffer::with_totals(
            0,
            0,
            vec![Slice::new(0, 1).unwrap(), Slice::new(0, 1).unwrap()],
            0,
            0,
        )
        .unwrap();
        let agg = aggregate(&[m1, m2]).unwrap();
        let ghost = Assignment::new(0, vec![2, 0]);
        assert!(agg.flexoffer().is_valid_assignment(&ghost));
        assert_eq!(
            agg.disaggregate(&ghost),
            Err(DisaggregationError::Unrealizable)
        );
        // The balanced assignment <1,1> is realizable.
        let fair = Assignment::new(0, vec![1, 1]);
        let parts = agg.disaggregate(&fair).unwrap();
        assert_exact_split(&agg, &fair, &parts);
    }

    #[test]
    fn flow_agrees_with_greedy_when_greedy_succeeds() {
        let f = fo(0, 2, vec![(0, 3), (1, 2)]);
        let g = fo(1, 3, vec![(2, 5)]);
        let agg = aggregate(&[f, g]).unwrap();
        for a in agg.flexoffer().assignments() {
            let greedy = agg.disaggregate_greedy(&a);
            let flow = agg.disaggregate_flow(&a);
            match (greedy, flow) {
                (Ok(gp), Ok(fp)) => {
                    assert_exact_split(&agg, &a, &gp);
                    assert_exact_split(&agg, &a, &fp);
                }
                (Err(_), Ok(fp)) => assert_exact_split(&agg, &a, &fp),
                (Ok(_), Err(_)) => panic!("greedy found a split the flow missed"),
                (Err(_), Err(_)) => panic!("assignment of the aggregate unrealizable: {a}"),
            }
        }
    }

    #[test]
    fn invalid_aggregate_assignment_rejected_up_front() {
        let agg = aggregate(&[fo(0, 1, vec![(0, 2)])]).unwrap();
        let bad = Assignment::new(9, vec![1]);
        assert!(matches!(
            agg.disaggregate(&bad),
            Err(DisaggregationError::InvalidAggregateAssignment(_))
        ));
    }

    #[test]
    fn singleton_disaggregation_is_identity() {
        let f = fo(1, 4, vec![(0, 2), (1, 3)]);
        let agg = aggregate(std::slice::from_ref(&f)).unwrap();
        let a = Assignment::new(2, vec![1, 2]);
        let parts = agg.disaggregate(&a).unwrap();
        assert_eq!(parts, vec![a]);
    }
}
