//! Error types for aggregation and disaggregation.

use std::error::Error;
use std::fmt;

use flexoffers_model::AssignmentViolation;

/// Errors raised while building an aggregate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AggregationError {
    /// Aggregating an empty group is undefined.
    EmptyGroup,
}

impl fmt::Display for AggregationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregationError::EmptyGroup => write!(f, "cannot aggregate an empty group"),
        }
    }
}

impl Error for AggregationError {}

/// Errors raised while disaggregating an aggregate's assignment back to its
/// members.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DisaggregationError {
    /// The assignment is not valid for the aggregated flex-offer itself.
    InvalidAggregateAssignment(AssignmentViolation),
    /// The assignment is valid for the aggregate but *no* combination of
    /// member assignments realises it — aggregation with heterogeneous total
    /// constraints can overestimate joint flexibility.
    Unrealizable,
}

impl fmt::Display for DisaggregationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisaggregationError::InvalidAggregateAssignment(v) => {
                write!(f, "assignment is invalid for the aggregate: {v}")
            }
            DisaggregationError::Unrealizable => write!(
                f,
                "assignment is valid for the aggregate but cannot be split into \
                 valid member assignments (aggregation overestimated flexibility)"
            ),
        }
    }
}

impl Error for DisaggregationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AggregationError::EmptyGroup.to_string().contains("empty"));
        assert!(DisaggregationError::Unrealizable
            .to_string()
            .contains("overestimated"));
        let v = AssignmentViolation::LengthMismatch {
            expected: 2,
            actual: 1,
        };
        assert!(DisaggregationError::InvalidAggregateAssignment(v)
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn implements_error() {
        fn assert_error<E: Error>(_: &E) {}
        assert_error(&AggregationError::EmptyGroup);
        assert_error(&DisaggregationError::Unrealizable);
    }
}
