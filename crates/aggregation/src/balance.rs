//! Balance-aware grouping (Valsomatzis et al., DARE 2014).
//!
//! TotalFlex uses aggregation "not only to reduce the number of the
//! flex-offers, but also to partially handle the balancing task": pairing
//! production with consumption so each aggregate's net energy is close to
//! zero. The resulting aggregates are *mixed* flex-offers — exactly the
//! class Section 4 shows the area-based measures cannot value, which is why
//! the paper recommends vector or assignment flexibility in this scenario.

use flexoffers_model::{FlexOffer, SignClass};

use crate::start_align::{aggregate, Aggregate};

/// Expected (midpoint) total energy of a flex-offer.
fn expected_energy(fo: &FlexOffer) -> f64 {
    (fo.total_min() + fo.total_max()) as f64 / 2.0
}

/// Greedily partitions a portfolio into balance-oriented groups.
///
/// Producers are processed by expected |energy| descending; each seeds a
/// group that repeatedly absorbs the *best-fitting* remaining consumer (the
/// one whose expected energy most reduces the group's absolute net) until no
/// consumer improves the balance. Leftover offers become singleton groups.
/// Mixed and zero offers pass through as singletons.
pub fn balance_groups(offers: &[FlexOffer]) -> Vec<Vec<FlexOffer>> {
    let mut consumers: Vec<&FlexOffer> = Vec::new();
    let mut producers: Vec<&FlexOffer> = Vec::new();
    let mut others: Vec<&FlexOffer> = Vec::new();
    for fo in offers {
        match fo.sign() {
            SignClass::Positive => consumers.push(fo),
            SignClass::Negative => producers.push(fo),
            SignClass::Mixed | SignClass::Zero => others.push(fo),
        }
    }
    producers.sort_by(|a, b| {
        expected_energy(b)
            .abs()
            .partial_cmp(&expected_energy(a).abs())
            .expect("finite")
    });

    let mut groups: Vec<Vec<FlexOffer>> = Vec::new();
    for producer in producers {
        let mut group = vec![producer.clone()];
        let mut net = expected_energy(producer);
        loop {
            // Best-fitting remaining consumer: largest reduction of |net|.
            let best = consumers
                .iter()
                .enumerate()
                .map(|(i, c)| (i, (net + expected_energy(c)).abs()))
                .filter(|&(_, candidate)| candidate < net.abs())
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            match best {
                Some((i, _)) => {
                    let chosen = consumers.swap_remove(i);
                    net += expected_energy(chosen);
                    group.push(chosen.clone());
                }
                None => break,
            }
        }
        groups.push(group);
    }
    for leftover in consumers {
        groups.push(vec![leftover.clone()]);
    }
    for other in others {
        groups.push(vec![other.clone()]);
    }
    groups
}

/// [`balance_groups`] followed by start-alignment aggregation of each group.
pub fn balance_aggregate(offers: &[FlexOffer]) -> Vec<Aggregate> {
    balance_groups(offers)
        .iter()
        .map(|g| aggregate(g).expect("balance groups are non-empty"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn consumer(tes: i64, tls: i64, amount: i64) -> FlexOffer {
        FlexOffer::new(tes, tls, vec![Slice::new(amount - 1, amount + 1).unwrap()]).unwrap()
    }

    fn producer(tes: i64, tls: i64, amount: i64) -> FlexOffer {
        FlexOffer::new(
            tes,
            tls,
            vec![Slice::new(-amount - 1, -amount + 1).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn pairs_production_with_consumption() {
        let offers = vec![consumer(0, 2, 5), producer(0, 2, 5)];
        let groups = balance_groups(&offers);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
        // Net expected energy of the pair is 0.
        let net: f64 = groups[0].iter().map(expected_energy).sum();
        assert_eq!(net, 0.0);
    }

    #[test]
    fn big_producer_absorbs_several_consumers() {
        let offers = vec![
            producer(0, 2, 10),
            consumer(0, 2, 4),
            consumer(0, 2, 3),
            consumer(0, 2, 3),
        ];
        let groups = balance_groups(&offers);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }

    #[test]
    fn leftover_consumers_stay_singletons() {
        let offers = vec![producer(0, 2, 3), consumer(0, 2, 3), consumer(0, 2, 8)];
        let groups = balance_groups(&offers);
        // Producer pairs with the closest-magnitude consumer (3); the
        // larger consumer worsens balance and is left alone.
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn balanced_aggregates_are_mixed() {
        let offers = vec![consumer(0, 2, 5), producer(0, 2, 5)];
        let aggs = balance_aggregate(&offers);
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].flexoffer().sign(), SignClass::Mixed);
        // Net expected energy of the aggregate is zero.
        let agg = aggs[0].flexoffer();
        assert_eq!(agg.total_min() + agg.total_max(), 0);
    }

    #[test]
    fn mixed_and_zero_offers_pass_through() {
        let mixed = FlexOffer::new(0, 1, vec![Slice::new(-1, 1).unwrap()]).unwrap();
        let zero = FlexOffer::new(0, 1, vec![Slice::fixed(0)]).unwrap();
        let groups = balance_groups(&[mixed.clone(), zero.clone()]);
        assert_eq!(groups, vec![vec![mixed], vec![zero]]);
    }

    #[test]
    fn empty_portfolio() {
        assert!(balance_groups(&[]).is_empty());
        assert!(balance_aggregate(&[]).is_empty());
    }
}
