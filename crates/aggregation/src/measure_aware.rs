//! Measure-aware aggregation — the paper's future work, implemented.
//!
//! Section 6: "The proposed flexibility measures will be added to the
//! constraints and/or objective functions of these aggregation algorithms,
//! performing aggregation jointly with flexibility optimization." This
//! module does exactly that: a greedy agglomerative grouper whose merge
//! criterion is *measured flexibility loss* rather than fixed tolerances.
//!
//! Starting from singleton groups (sorted by earliest start), adjacent
//! groups merge while the chosen measure's value over the would-be
//! aggregate retains at least `1 - max_relative_loss` of the groups'
//! summed value. The result adapts to the portfolio: tight clusters of
//! similar flex-offers collapse aggressively, outliers stay separate —
//! without hand-tuned tolerances.

use flexoffers_measures::{Measure, MeasureError};
use flexoffers_model::FlexOffer;

use crate::error::AggregationError;
use crate::start_align::{aggregate, Aggregate};

/// Configuration for measure-aware aggregation.
pub struct MeasureAwareGrouping<'a> {
    /// The measure whose loss is constrained (e.g. product flexibility for
    /// Scenario 1, absolute area for size-aware valuation).
    pub measure: &'a dyn Measure,
    /// Maximum tolerated relative loss per merge, in `[0, 1]`: a merge is
    /// accepted only while `measure(aggregate) >= (1 - budget) *
    /// (measure(group_a) + measure(group_b))`.
    pub max_relative_loss: f64,
    /// Optional cap on members per aggregate.
    pub max_group_size: Option<usize>,
}

impl<'a> MeasureAwareGrouping<'a> {
    /// A grouper bounding the given measure's per-merge relative loss.
    pub fn new(measure: &'a dyn Measure, max_relative_loss: f64) -> Self {
        Self {
            measure,
            max_relative_loss,
            max_group_size: None,
        }
    }

    /// Aggregates a portfolio under the loss budget.
    ///
    /// Greedy left-to-right over offers sorted by `(tes, tf)`: each offer
    /// joins the current group if the re-aggregated group keeps enough of
    /// the measured flexibility, otherwise it seeds a new group. Runs in
    /// `O(n)` aggregations plus `O(n)` measure evaluations.
    pub fn aggregate_portfolio(
        &self,
        offers: &[FlexOffer],
    ) -> Result<Vec<Aggregate>, MeasureAwareError> {
        let mut order: Vec<usize> = (0..offers.len()).collect();
        order.sort_by_key(|&i| (offers[i].earliest_start(), offers[i].time_flexibility()));

        let mut groups: Vec<Vec<FlexOffer>> = Vec::new();
        let mut group_values: Vec<f64> = Vec::new(); // summed member values
        for i in order {
            let offer = &offers[i];
            let offer_value = self.measure.of(offer).map_err(MeasureAwareError::Measure)?;
            let accepted = if let (Some(group), Some(&value)) = (groups.last(), group_values.last())
            {
                if self.max_group_size.is_some_and(|cap| group.len() >= cap) {
                    false
                } else {
                    let mut candidate = group.clone();
                    candidate.push(offer.clone());
                    let merged = aggregate(&candidate).map_err(MeasureAwareError::Aggregation)?;
                    let kept = self
                        .measure
                        .of(merged.flexoffer())
                        .map_err(MeasureAwareError::Measure)?;
                    kept >= (1.0 - self.max_relative_loss) * (value + offer_value)
                }
            } else {
                false
            };
            if accepted {
                groups
                    .last_mut()
                    .expect("accepted implies group")
                    .push(offer.clone());
                *group_values.last_mut().expect("accepted implies value") += offer_value;
            } else {
                groups.push(vec![offer.clone()]);
                group_values.push(offer_value);
            }
        }
        groups
            .iter()
            .map(|g| aggregate(g).map_err(MeasureAwareError::Aggregation))
            .collect()
    }
}

/// Errors from measure-aware aggregation.
#[derive(Debug)]
pub enum MeasureAwareError {
    /// The loss measure was undefined on some offer or aggregate (e.g. an
    /// area measure meeting a mixed group).
    Measure(MeasureError),
    /// Aggregation itself failed.
    Aggregation(AggregationError),
}

impl std::fmt::Display for MeasureAwareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureAwareError::Measure(e) => write!(f, "loss measure failed: {e}"),
            MeasureAwareError::Aggregation(e) => write!(f, "aggregation failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureAwareError {}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_measures::{ProductFlexibility, TimeFlexibility, VectorFlexibility};
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64, lo: i64, hi: i64) -> FlexOffer {
        FlexOffer::new(tes, tls, vec![Slice::new(lo, hi).unwrap()]).unwrap()
    }

    #[test]
    fn zero_budget_merges_only_lossless_pairs() {
        // Identical offers: vector flexibility of the aggregate (min tf,
        // sum ef) loses tf relative to the member sum, so a zero budget
        // keeps them apart; a generous budget merges them.
        let offers = vec![fo(0, 2, 0, 3), fo(0, 2, 0, 3), fo(0, 2, 0, 3)];
        let strict = MeasureAwareGrouping::new(&VectorFlexibility::default(), 0.0)
            .aggregate_portfolio(&offers)
            .unwrap();
        assert_eq!(strict.len(), 3);
        let loose = MeasureAwareGrouping::new(&VectorFlexibility::default(), 0.5)
            .aggregate_portfolio(&offers)
            .unwrap();
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn energy_dominant_measure_merges_freely() {
        // Product flexibility: merging equal-tf offers keeps tf and sums
        // ef, so product(agg) = tf * sum(ef) = sum(product) — lossless.
        let offers = vec![fo(0, 3, 0, 2), fo(0, 3, 1, 4), fo(0, 3, 0, 5)];
        let merged = MeasureAwareGrouping::new(&ProductFlexibility, 0.0)
            .aggregate_portfolio(&offers)
            .unwrap();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].len(), 3);
    }

    #[test]
    fn outliers_stay_separate() {
        // One rigid outlier would destroy the flexible group's time
        // flexibility under the min-rule.
        let offers = vec![fo(0, 6, 0, 2), fo(0, 6, 0, 2), fo(0, 0, 0, 2)];
        let groups = MeasureAwareGrouping::new(&ProductFlexibility, 0.1)
            .aggregate_portfolio(&offers)
            .unwrap();
        assert_eq!(groups.len(), 2);
        // The rigid offer is alone.
        assert!(groups
            .iter()
            .any(|g| g.len() == 1 && g.members()[0].time_flexibility() == 0));
    }

    #[test]
    fn budget_interpolates_between_extremes() {
        let offers: Vec<FlexOffer> = (0..8).map(|i| fo(i % 4, i % 4 + 2 + i % 3, 0, 3)).collect();
        let mut last = usize::MAX;
        for budget in [0.0, 0.25, 0.5, 1.0] {
            let groups = MeasureAwareGrouping::new(&TimeFlexibility, budget)
                .aggregate_portfolio(&offers)
                .unwrap();
            assert!(groups.len() <= last, "coarser budget, fewer groups");
            last = groups.len();
        }
        assert_eq!(last, 1, "full budget collapses everything");
    }

    #[test]
    fn group_size_cap_respected() {
        let offers = vec![fo(0, 3, 0, 2); 7];
        let grouper = MeasureAwareGrouping {
            measure: &ProductFlexibility,
            max_relative_loss: 1.0,
            max_group_size: Some(3),
        };
        let groups = grouper.aggregate_portfolio(&offers).unwrap();
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() <= 3));
    }

    #[test]
    fn empty_portfolio_is_fine() {
        let groups = MeasureAwareGrouping::new(&TimeFlexibility, 0.2)
            .aggregate_portfolio(&[])
            .unwrap();
        assert!(groups.is_empty());
    }

    #[test]
    fn loss_budget_actually_bounds_the_loss_per_merge_step() {
        // Verify the invariant on the final grouping: each group's measure
        // retains at least (1-budget)^(k-1) of the member sum for a group
        // of k members (each merge step could shed up to `budget`).
        let offers: Vec<FlexOffer> = (0..10)
            .map(|i| fo(i % 3, i % 3 + 3, 0, 2 + i % 2))
            .collect();
        let budget = 0.3;
        let measure = VectorFlexibility::default();
        let groups = MeasureAwareGrouping::new(&measure, budget)
            .aggregate_portfolio(&offers)
            .unwrap();
        for g in &groups {
            let member_sum: f64 = g.members().iter().map(|m| measure.of(m).unwrap()).sum();
            let kept = measure.of(g.flexoffer()).unwrap();
            let floor = (1.0 - budget).powi(g.len() as i32 - 1) * member_sum;
            assert!(
                kept + 1e-9 >= floor,
                "group of {} kept {kept} of {member_sum} (floor {floor})",
                g.len()
            );
        }
    }
}
