//! Tolerance-based grouping of flex-offers before aggregation.
//!
//! Start-alignment aggregation keeps only the *minimum* member time
//! flexibility, so throwing dissimilar flex-offers into one aggregate
//! destroys flexibility. Following the grouping parameters of Šikšnys et
//! al. (SSDBM 2012), offers are grouped only while their earliest start
//! times and time flexibilities stay within configured tolerances — the
//! knobs the flexibility-loss experiment sweeps.

use serde::{Deserialize, Serialize};

use flexoffers_model::FlexOffer;

/// Grouping tolerances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupingParams {
    /// Maximum spread of earliest start times within a group (the EST
    /// tolerance of SSDBM 2012).
    pub est_tolerance: i64,
    /// Maximum spread of time flexibilities within a group (the TFT
    /// tolerance).
    pub tf_tolerance: i64,
    /// Optional cap on group size (e.g. a market lot limit).
    pub max_group_size: Option<usize>,
}

impl GroupingParams {
    /// Tolerances of zero: only identical `(tes, tf)` profiles group.
    pub fn strict() -> Self {
        Self {
            est_tolerance: 0,
            tf_tolerance: 0,
            max_group_size: None,
        }
    }

    /// Unbounded tolerances: everything lands in one group.
    pub fn single_group() -> Self {
        Self {
            est_tolerance: i64::MAX,
            tf_tolerance: i64::MAX,
            max_group_size: None,
        }
    }

    /// Symmetric tolerances without a size cap.
    pub fn with_tolerances(est_tolerance: i64, tf_tolerance: i64) -> Self {
        Self {
            est_tolerance,
            tf_tolerance,
            max_group_size: None,
        }
    }
}

/// Partitions `offers` into groups of indices honouring the tolerances.
///
/// Offers are sorted by `(tes, tf)` and swept greedily: an offer joins the
/// current group while its `tes` stays within `est_tolerance` of the group's
/// first `tes`, its `tf` within `tf_tolerance` of the group's first `tf`,
/// and the size cap is not hit. Groups are returned in sweep order; indices
/// refer to the *input* slice.
pub fn group_indices(offers: &[FlexOffer], params: &GroupingParams) -> Vec<Vec<usize>> {
    let keys: Vec<(i64, i64)> = offers
        .iter()
        .map(|fo| (fo.earliest_start(), fo.time_flexibility()))
        .collect();
    group_keys(&keys, params)
}

/// The grouping sweep over bare `(tes, tf)` keys — the one implementation
/// behind [`group_indices`], exposed so callers holding a *partitioned*
/// offer book (one that never materialises a flat `&[FlexOffer]`) can still
/// compute the exact same global grouping from 16 bytes per offer.
///
/// `keys[i]` is offer `i`'s `(earliest_start, time_flexibility)`; the
/// returned index groups are identical to what [`group_indices`] yields on
/// a slice with those keys, in the same order.
pub fn group_keys(keys: &[(i64, i64)], params: &GroupingParams) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| keys[i]);
    sweep_grouping(order.into_iter().map(|i| (keys[i], i)), params)
}

/// The greedy tolerance sweep shared by [`group_keys`] and
/// [`KeyIndex::group_ids`]: entries must arrive sorted by `(key, tag)`, and
/// each entry joins the current group while its `tes` stays within
/// `est_tolerance` of the group's first `tes`, its `tf` within
/// `tf_tolerance` of the group's first `tf`, and the size cap is not hit.
/// Keeping the sweep in one function is what makes the incremental and the
/// from-scratch grouping identical by construction.
fn sweep_grouping<T>(
    sorted: impl Iterator<Item = ((i64, i64), T)>,
    params: &GroupingParams,
) -> Vec<Vec<T>> {
    let mut groups: Vec<Vec<T>> = Vec::new();
    let mut anchor: Option<(i64, i64)> = None;
    for ((tes, tf), tag) in sorted {
        let fits = match (anchor, groups.last()) {
            (Some((a_tes, a_tf)), Some(last)) => {
                tes - a_tes <= params.est_tolerance
                    && (tf - a_tf).abs() <= params.tf_tolerance
                    && params.max_group_size.is_none_or(|cap| last.len() < cap)
            }
            _ => false,
        };
        if fits {
            groups.last_mut().expect("fits implies a group").push(tag);
        } else {
            anchor = Some((tes, tf));
            groups.push(vec![tag]);
        }
    }
    groups
}

/// An incrementally maintained sorted multiset of `(tes, tf)` grouping keys,
/// tagged with caller-chosen `u64` ids — the aggregation layer's piece of a
/// *live* portfolio book.
///
/// [`group_keys`] pays an `O(n log n)` sort on every call; a serving tier
/// that re-groups after every single-offer update cannot afford that. A
/// `KeyIndex` keeps a sorted main run plus an O(1)-append pending buffer:
/// inserts land in the buffer, and [`group_ids`] settles it (sort the
/// *buffer only*, one linear merge) before its linear sweep — the exact
/// sweep `group_keys` runs after sorting. Bulk loads stay linearithmic in
/// the *batch* size, and the steady-state single-offer update re-groups
/// with one `O(n)` merge pass and **no sort of the book's keys**.
///
/// # Equivalence
///
/// Entries are ordered by `(key, id)`. When ids are assigned in the same
/// order as positions in a logical portfolio (id order ⇔ position order —
/// true for a monotone id counter over a stream of adds, and removals keep
/// the remaining order), `group_ids` returns exactly the groups
/// [`group_keys`] produces over that portfolio's key slice, with ids in
/// place of positions: `group_keys`'s stable sort of distinct positions by
/// key *is* the `(key, position)` order. The round-trip test below and the
/// serving crate's proptests pin this.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyIndex {
    /// Sorted by `(key, id)`; ids are unique across both runs.
    sorted: Vec<((i64, i64), u64)>,
    /// Not-yet-merged inserts, in arrival order.
    pending: Vec<((i64, i64), u64)>,
}

impl KeyIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.sorted.len() + self.pending.len()
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.pending.is_empty()
    }

    /// Inserts `id` with `key` (amortised O(1) — the entry waits in the
    /// pending buffer until the next settle). A million-offer bulk load is
    /// a million O(1) pushes plus *one* sort-and-merge at the first query.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present under `key` in the settled run
    /// (debug builds also scan the pending buffer) — an id must be
    /// [`remove`](KeyIndex::remove)d (with its old key) before it can be
    /// re-inserted, or the index would silently hold duplicates.
    pub fn insert(&mut self, id: u64, key: (i64, i64)) {
        let entry = (key, id);
        assert!(
            self.sorted.binary_search(&entry).is_err(),
            "key index already holds id {id} under {key:?}"
        );
        // The pending scan is linear; keeping it out of release builds is
        // what makes bulk loads O(1) per insert.
        debug_assert!(
            !self.pending.contains(&entry),
            "key index already holds id {id} under {key:?}"
        );
        self.pending.push(entry);
    }

    /// Removes `id`, which the caller knows is stored under `key` (the
    /// serving book holds the offer and therefore its old key). Returns
    /// `false` when no such entry exists.
    pub fn remove(&mut self, id: u64, key: (i64, i64)) -> bool {
        // A large pending buffer would make the fallback scan below the
        // hot cost (removals right after a bulk load); settle first so
        // removal is a binary search plus one bounded scan.
        if self.pending.len() > 64 {
            self.settle();
        }
        let entry = (key, id);
        if let Ok(at) = self.sorted.binary_search(&entry) {
            self.sorted.remove(at);
            return true;
        }
        if let Some(at) = self.pending.iter().position(|e| *e == entry) {
            self.pending.swap_remove(at);
            return true;
        }
        false
    }

    /// Merges the pending buffer into the sorted run: sort the buffer
    /// (only), then one linear two-run merge.
    fn settle(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable();
        let mut merged = Vec::with_capacity(self.len());
        let mut a = std::mem::take(&mut self.sorted).into_iter().peekable();
        let mut b = std::mem::take(&mut self.pending).into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        merged.push(a.next().expect("peeked"));
                    } else {
                        merged.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(a.next().expect("peeked")),
                (None, Some(_)) => merged.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.sorted = merged;
    }

    /// The tolerance grouping over the live entries: identical to
    /// [`group_keys`] over the same key multiset (see the type docs for the
    /// id/position correspondence), with no sort of the book's keys on the
    /// query path (only a fresh pending buffer, if any, gets sorted).
    pub fn group_ids(&mut self, params: &GroupingParams) -> Vec<Vec<u64>> {
        self.settle();
        sweep_grouping(self.sorted.iter().map(|&(key, id)| (key, id)), params)
    }
}

/// Like [`group_indices`] but returning cloned flex-offer groups.
pub fn group_offers(offers: &[FlexOffer], params: &GroupingParams) -> Vec<Vec<FlexOffer>> {
    group_indices(offers, params)
        .into_iter()
        .map(|idx| idx.into_iter().map(|i| offers[i].clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64) -> FlexOffer {
        FlexOffer::new(tes, tls, vec![Slice::new(0, 2).unwrap()]).unwrap()
    }

    #[test]
    fn strict_groups_only_identical_shapes() {
        let offers = vec![fo(0, 2), fo(0, 2), fo(0, 3), fo(1, 3)];
        let groups = group_indices(&offers, &GroupingParams::strict());
        assert_eq!(groups, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn single_group_swallows_everything() {
        let offers = vec![fo(0, 2), fo(50, 90), fo(7, 7)];
        let groups = group_indices(&offers, &GroupingParams::single_group());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn tolerances_split_on_both_axes() {
        let offers = vec![
            fo(0, 2),  // tes 0, tf 2
            fo(1, 3),  // tes 1, tf 2 -> within est 2, tf 0
            fo(5, 7),  // tes 5 -> too far
            fo(5, 20), // tf 15 -> too different
        ];
        let groups = group_indices(&offers, &GroupingParams::with_tolerances(2, 1));
        assert_eq!(groups, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn size_cap_splits_groups() {
        let offers = vec![fo(0, 2); 5];
        let params = GroupingParams {
            est_tolerance: 10,
            tf_tolerance: 10,
            max_group_size: Some(2),
        };
        let groups = group_indices(&offers, &params);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() <= 2));
    }

    #[test]
    fn groups_partition_the_input() {
        let offers = vec![fo(3, 5), fo(0, 1), fo(2, 2), fo(9, 12)];
        let groups = group_indices(&offers, &GroupingParams::with_tolerances(3, 2));
        let mut seen: Vec<usize> = groups.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(group_indices(&[], &GroupingParams::single_group()).is_empty());
        assert!(group_offers(&[], &GroupingParams::strict()).is_empty());
    }

    #[test]
    fn group_keys_is_exactly_group_indices_on_keys() {
        let offers = vec![fo(3, 5), fo(0, 1), fo(2, 2), fo(9, 12), fo(0, 1)];
        let keys: Vec<(i64, i64)> = offers
            .iter()
            .map(|f| (f.earliest_start(), f.time_flexibility()))
            .collect();
        for params in [
            GroupingParams::strict(),
            GroupingParams::single_group(),
            GroupingParams::with_tolerances(3, 2),
            GroupingParams {
                est_tolerance: 10,
                tf_tolerance: 10,
                max_group_size: Some(2),
            },
        ] {
            assert_eq!(
                group_keys(&keys, &params),
                group_indices(&offers, &params),
                "{params:?}"
            );
        }
    }

    #[test]
    fn key_index_matches_group_keys_after_incremental_edits() {
        // Build a key list, mirror it through a KeyIndex with interleaved
        // inserts/removes/re-inserts, and require the exact group_keys
        // output (ids standing in for positions).
        let mut keys: Vec<(i64, i64)> = vec![(0, 2), (1, 2), (5, 7), (0, 2), (5, 20), (2, 3)];
        let mut index = KeyIndex::new();
        for (i, &key) in keys.iter().enumerate() {
            index.insert(i as u64, key);
        }
        // Remove position 2, update position 4's key: the flat view drops
        // and rewrites in place, the index removes/re-inserts.
        assert!(index.remove(2, keys[2]));
        assert!(index.remove(4, keys[4]));
        index.insert(4, (1, 3));
        keys.remove(2);
        keys[3] = (1, 3); // old position 4
        assert!(!index.remove(99, (0, 0)), "unknown id reports false");

        // Live ids in position order (id 2 is gone; ids stay monotone).
        let live_ids: Vec<u64> = vec![0, 1, 3, 4, 5];
        for params in [
            GroupingParams::strict(),
            GroupingParams::single_group(),
            GroupingParams::with_tolerances(2, 1),
            GroupingParams {
                est_tolerance: 10,
                tf_tolerance: 10,
                max_group_size: Some(2),
            },
        ] {
            let expected: Vec<Vec<u64>> = group_keys(&keys, &params)
                .into_iter()
                .map(|group| group.into_iter().map(|pos| live_ids[pos]).collect())
                .collect();
            assert_eq!(index.group_ids(&params), expected, "{params:?}");
        }
        assert_eq!(index.len(), 5);
        assert!(!index.is_empty());
    }

    #[test]
    fn key_index_ties_stay_in_id_order() {
        // Equal keys must sweep in id order — the stable-sort behaviour of
        // group_keys — regardless of insertion order.
        let mut index = KeyIndex::new();
        for id in [3u64, 0, 2, 1] {
            index.insert(id, (4, 4));
        }
        assert_eq!(
            index.group_ids(&GroupingParams::single_group()),
            vec![vec![0, 1, 2, 3]]
        );
    }

    #[test]
    #[should_panic(expected = "already holds id")]
    fn key_index_rejects_duplicate_ids() {
        let mut index = KeyIndex::new();
        index.insert(7, (1, 1));
        index.insert(7, (1, 1));
    }

    #[test]
    fn empty_key_index_groups_to_nothing() {
        let mut index = KeyIndex::new();
        assert!(index.group_ids(&GroupingParams::strict()).is_empty());
        assert!(index.is_empty());
    }

    #[test]
    fn pending_entries_are_visible_before_and_after_settling() {
        // Entries removed while still pending, and groupings interleaved
        // with inserts, behave exactly as if every insert merged eagerly.
        let mut index = KeyIndex::new();
        index.insert(0, (5, 5));
        index.insert(1, (0, 0));
        assert_eq!(index.len(), 2);
        assert!(index.remove(0, (5, 5)), "remove out of the pending buffer");
        assert_eq!(
            index.group_ids(&GroupingParams::single_group()),
            vec![vec![1]]
        );
        index.insert(2, (0, 0));
        assert!(index.remove(1, (0, 0)), "remove out of the sorted run");
        assert_eq!(
            index.group_ids(&GroupingParams::single_group()),
            vec![vec![2]]
        );
    }

    #[test]
    fn group_offers_mirrors_indices() {
        let offers = vec![fo(0, 2), fo(0, 2), fo(8, 9)];
        let by_offers = group_offers(&offers, &GroupingParams::with_tolerances(1, 1));
        assert_eq!(by_offers.len(), 2);
        assert_eq!(by_offers[0].len(), 2);
        assert_eq!(by_offers[1][0], offers[2]);
    }
}
