//! Tolerance-based grouping of flex-offers before aggregation.
//!
//! Start-alignment aggregation keeps only the *minimum* member time
//! flexibility, so throwing dissimilar flex-offers into one aggregate
//! destroys flexibility. Following the grouping parameters of Šikšnys et
//! al. (SSDBM 2012), offers are grouped only while their earliest start
//! times and time flexibilities stay within configured tolerances — the
//! knobs the flexibility-loss experiment sweeps.

use serde::{Deserialize, Serialize};

use flexoffers_model::FlexOffer;

/// Grouping tolerances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupingParams {
    /// Maximum spread of earliest start times within a group (the EST
    /// tolerance of SSDBM 2012).
    pub est_tolerance: i64,
    /// Maximum spread of time flexibilities within a group (the TFT
    /// tolerance).
    pub tf_tolerance: i64,
    /// Optional cap on group size (e.g. a market lot limit).
    pub max_group_size: Option<usize>,
}

impl GroupingParams {
    /// Tolerances of zero: only identical `(tes, tf)` profiles group.
    pub fn strict() -> Self {
        Self {
            est_tolerance: 0,
            tf_tolerance: 0,
            max_group_size: None,
        }
    }

    /// Unbounded tolerances: everything lands in one group.
    pub fn single_group() -> Self {
        Self {
            est_tolerance: i64::MAX,
            tf_tolerance: i64::MAX,
            max_group_size: None,
        }
    }

    /// Symmetric tolerances without a size cap.
    pub fn with_tolerances(est_tolerance: i64, tf_tolerance: i64) -> Self {
        Self {
            est_tolerance,
            tf_tolerance,
            max_group_size: None,
        }
    }
}

/// Partitions `offers` into groups of indices honouring the tolerances.
///
/// Offers are sorted by `(tes, tf)` and swept greedily: an offer joins the
/// current group while its `tes` stays within `est_tolerance` of the group's
/// first `tes`, its `tf` within `tf_tolerance` of the group's first `tf`,
/// and the size cap is not hit. Groups are returned in sweep order; indices
/// refer to the *input* slice.
pub fn group_indices(offers: &[FlexOffer], params: &GroupingParams) -> Vec<Vec<usize>> {
    let keys: Vec<(i64, i64)> = offers
        .iter()
        .map(|fo| (fo.earliest_start(), fo.time_flexibility()))
        .collect();
    group_keys(&keys, params)
}

/// The grouping sweep over bare `(tes, tf)` keys — the one implementation
/// behind [`group_indices`], exposed so callers holding a *partitioned*
/// offer book (one that never materialises a flat `&[FlexOffer]`) can still
/// compute the exact same global grouping from 16 bytes per offer.
///
/// `keys[i]` is offer `i`'s `(earliest_start, time_flexibility)`; the
/// returned index groups are identical to what [`group_indices`] yields on
/// a slice with those keys, in the same order.
pub fn group_keys(keys: &[(i64, i64)], params: &GroupingParams) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| keys[i]);

    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut anchor: Option<(i64, i64)> = None;
    for i in order {
        let (tes, tf) = keys[i];
        let fits = match (anchor, groups.last()) {
            (Some((a_tes, a_tf)), Some(last)) => {
                tes - a_tes <= params.est_tolerance
                    && (tf - a_tf).abs() <= params.tf_tolerance
                    && params.max_group_size.is_none_or(|cap| last.len() < cap)
            }
            _ => false,
        };
        if fits {
            groups.last_mut().expect("fits implies a group").push(i);
        } else {
            anchor = Some((tes, tf));
            groups.push(vec![i]);
        }
    }
    groups
}

/// Like [`group_indices`] but returning cloned flex-offer groups.
pub fn group_offers(offers: &[FlexOffer], params: &GroupingParams) -> Vec<Vec<FlexOffer>> {
    group_indices(offers, params)
        .into_iter()
        .map(|idx| idx.into_iter().map(|i| offers[i].clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn fo(tes: i64, tls: i64) -> FlexOffer {
        FlexOffer::new(tes, tls, vec![Slice::new(0, 2).unwrap()]).unwrap()
    }

    #[test]
    fn strict_groups_only_identical_shapes() {
        let offers = vec![fo(0, 2), fo(0, 2), fo(0, 3), fo(1, 3)];
        let groups = group_indices(&offers, &GroupingParams::strict());
        assert_eq!(groups, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn single_group_swallows_everything() {
        let offers = vec![fo(0, 2), fo(50, 90), fo(7, 7)];
        let groups = group_indices(&offers, &GroupingParams::single_group());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn tolerances_split_on_both_axes() {
        let offers = vec![
            fo(0, 2),  // tes 0, tf 2
            fo(1, 3),  // tes 1, tf 2 -> within est 2, tf 0
            fo(5, 7),  // tes 5 -> too far
            fo(5, 20), // tf 15 -> too different
        ];
        let groups = group_indices(&offers, &GroupingParams::with_tolerances(2, 1));
        assert_eq!(groups, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn size_cap_splits_groups() {
        let offers = vec![fo(0, 2); 5];
        let params = GroupingParams {
            est_tolerance: 10,
            tf_tolerance: 10,
            max_group_size: Some(2),
        };
        let groups = group_indices(&offers, &params);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() <= 2));
    }

    #[test]
    fn groups_partition_the_input() {
        let offers = vec![fo(3, 5), fo(0, 1), fo(2, 2), fo(9, 12)];
        let groups = group_indices(&offers, &GroupingParams::with_tolerances(3, 2));
        let mut seen: Vec<usize> = groups.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(group_indices(&[], &GroupingParams::single_group()).is_empty());
        assert!(group_offers(&[], &GroupingParams::strict()).is_empty());
    }

    #[test]
    fn group_keys_is_exactly_group_indices_on_keys() {
        let offers = vec![fo(3, 5), fo(0, 1), fo(2, 2), fo(9, 12), fo(0, 1)];
        let keys: Vec<(i64, i64)> = offers
            .iter()
            .map(|f| (f.earliest_start(), f.time_flexibility()))
            .collect();
        for params in [
            GroupingParams::strict(),
            GroupingParams::single_group(),
            GroupingParams::with_tolerances(3, 2),
            GroupingParams {
                est_tolerance: 10,
                tf_tolerance: 10,
                max_group_size: Some(2),
            },
        ] {
            assert_eq!(
                group_keys(&keys, &params),
                group_indices(&offers, &params),
                "{params:?}"
            );
        }
    }

    #[test]
    fn group_offers_mirrors_indices() {
        let offers = vec![fo(0, 2), fo(0, 2), fo(8, 9)];
        let by_offers = group_offers(&offers, &GroupingParams::with_tolerances(1, 1));
        assert_eq!(by_offers.len(), 2);
        assert_eq!(by_offers[0].len(), 2);
        assert_eq!(by_offers[1][0], offers[2]);
    }
}
