//! Engine determinism properties.
//!
//! The engine's contract is that *no* scheduling knob is observable in its
//! results: any thread count, any chunk size, and the plain sequential
//! per-offer loop all produce bitwise-identical values and errors. These
//! properties drive randomly shaped portfolios (mixed signs included, so
//! the error paths get exercised) through every comparison.

use flexoffers_aggregation::{aggregate_portfolio, GroupingParams};
use flexoffers_engine::{Budget, Engine, Kernel, Partitioner, ShardedBook};
use flexoffers_market::{Aggregator, SpotMarket};
use flexoffers_measures::all_measures;
use flexoffers_model::{FlexOffer, Portfolio, Slice};
use flexoffers_scheduling::{schedule_via_aggregation, GreedyScheduler, SchedulingProblem};
use flexoffers_timeseries::Series;
use proptest::prelude::*;

fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,
        0i64..5,
        prop::collection::vec((-5i64..5, 0i64..5), 1..5),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(tes, window, raw, cmin_pos, cmax_pos)| {
            let slices: Vec<Slice> = raw
                .into_iter()
                .map(|(min, w)| Slice::new(min, min + w).unwrap())
                .collect();
            let pmin: i64 = slices.iter().map(Slice::min).sum();
            let pmax: i64 = slices.iter().map(Slice::max).sum();
            let cmin = pmin + ((pmax - pmin) as f64 * cmin_pos) as i64;
            let cmax = cmin + ((pmax - cmin) as f64 * cmax_pos) as i64;
            FlexOffer::with_totals(tes, tes + window, slices, cmin, cmax).unwrap()
        })
}

fn arb_portfolio() -> impl Strategy<Value = Vec<FlexOffer>> {
    prop::collection::vec(arb_flexoffer(), 0..33)
}

fn arb_target() -> impl Strategy<Value = Series<i64>> {
    prop::collection::vec(-6i64..12, 1..10).prop_map(|values| Series::new(0, values))
}

fn arb_market() -> impl Strategy<Value = SpotMarket> {
    (prop::collection::vec(0.5f64..20.0, 1..10), 1.0f64..4.0)
        .prop_map(|(prices, penalty)| SpotMarket::new(Series::new(0, prices), penalty).unwrap())
}

/// Either partitioner, with group-aware tolerances drawn independently of
/// the pipeline's own grouping parameters (partitioning must not have to
/// match the query to stay exact).
fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    (0usize..2, 0i64..6, 0i64..6).prop_map(|(which, est, tft)| {
        if which == 0 {
            Partitioner::HashById
        } else {
            Partitioner::GroupAware(GroupingParams::with_tolerances(est, tft))
        }
    })
}

/// A realistic seeded workload (not just the proptest shapes): regenerating
/// the same city portfolio and measuring it at 1 vs 8 threads is
/// reproducible end to end.
#[test]
fn seeded_city_portfolio_is_reproducible_across_thread_counts() {
    let a = flexoffers_workloads::city(3, 300);
    let b = flexoffers_workloads::city(3, 300);
    assert_eq!(a, b, "same seed must regenerate the same portfolio");
    let one = Engine::sequential().measure_portfolio_all(a.as_slice());
    let eight = Engine::new(Budget::with_threads(8).unwrap()).measure_portfolio_all(b.as_slice());
    assert_eq!(one.summaries, eight.summaries);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same portfolio, 1 vs N threads: identical summaries, bit for bit.
    #[test]
    fn thread_count_never_changes_results(
        fos in arb_portfolio(),
        threads in 2usize..9,
    ) {
        let one = Engine::sequential().measure_portfolio_all(&fos);
        let many = Engine::new(Budget::with_threads(threads).unwrap())
            .measure_portfolio_all(&fos);
        prop_assert_eq!(one.summaries, many.summaries);
    }

    /// Chunk size is a throughput knob only.
    #[test]
    fn chunk_size_never_changes_results(
        fos in arb_portfolio(),
        chunk in 1usize..17,
        threads in 1usize..9,
    ) {
        let default = Engine::new(Budget::with_threads(threads).unwrap())
            .measure_portfolio_all(&fos);
        let pinned = Engine::new(
            Budget::with_threads(threads).unwrap().with_chunk_size(chunk).unwrap(),
        )
        .measure_portfolio_all(&fos);
        prop_assert_eq!(default.summaries, pinned.summaries);
    }

    /// The engine agrees exactly with the sequential per-offer `of_set`
    /// loop — values where the loop succeeds, the same error where it
    /// short-circuits.
    #[test]
    fn engine_matches_sequential_of_set(fos in arb_portfolio()) {
        let report = Engine::new(Budget::with_threads(8).unwrap())
            .measure_portfolio_all(&fos);
        for (summary, m) in report.summaries.iter().zip(all_measures()) {
            prop_assert_eq!(
                summary.value.clone(),
                m.of_set(&fos),
                "{} diverges from its sequential loop",
                summary.measure
            );
            prop_assert_eq!(summary.evaluated + summary.failed, fos.len());
        }
    }

    /// The kernel knob is a pure throughput switch: scalar, columnar and
    /// auto produce bitwise-identical per-offer rows at any threads ×
    /// chunk combination — including chunks larger than the portfolio,
    /// empty portfolios, and singletons.
    #[test]
    fn kernel_never_changes_per_offer_rows(
        fos in arb_portfolio(),
        threads in 1usize..5,
        chunk in 1usize..40,
    ) {
        let measures = all_measures();
        let budget = |kernel| {
            Budget::with_threads(threads)
                .unwrap()
                .with_chunk_size(chunk)
                .unwrap()
                .with_kernel(kernel)
        };
        let scalar = Engine::new(budget(Kernel::Scalar)).per_offer_rows(&fos, &measures);
        let columnar = Engine::new(budget(Kernel::Columnar)).per_offer_rows(&fos, &measures);
        let auto = Engine::new(budget(Kernel::Auto)).per_offer_rows(&fos, &measures);
        prop_assert_eq!(scalar.len(), fos.len());
        prop_assert_eq!(columnar.len(), fos.len());
        for (i, (s_row, c_row)) in scalar.iter().zip(&columnar).enumerate() {
            prop_assert_eq!(s_row.len(), c_row.len());
            for (j, (s, c)) in s_row.iter().zip(c_row).enumerate() {
                match (s, c) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "offer {} measure {}: {} vs {}", i, j, a, b
                    ),
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (a, b) => prop_assert!(
                        false,
                        "offer {} measure {}: {:?} vs {:?}", i, j, a, b
                    ),
                }
            }
        }
        prop_assert_eq!(&columnar, &auto);
    }

    /// Every kernel's chunked baseline partials merge to exactly the
    /// market crate's sequential earliest-start baseline.
    #[test]
    fn baseline_kernels_agree_with_the_market_baseline(
        fos in arb_portfolio(),
        threads in 1usize..5,
        chunk in 1usize..40,
    ) {
        let reference = flexoffers_market::baseline_load(&fos);
        for kernel in [Kernel::Scalar, Kernel::Columnar, Kernel::Auto] {
            let engine = Engine::new(
                Budget::with_threads(threads)
                    .unwrap()
                    .with_chunk_size(chunk)
                    .unwrap()
                    .with_kernel(kernel),
            );
            prop_assert_eq!(
                engine.baseline_load_parallel(&fos),
                reference.clone(),
                "kernel {:?}", kernel
            );
        }
    }

    /// The sharded book's merge tier is kernel-blind too: a columnar
    /// sharded measurement reproduces the flat scalar engine bit for bit.
    #[test]
    fn sharded_columnar_measure_matches_flat_scalar(
        fos in arb_portfolio(),
        shards in 1usize..6,
        partitioner in arb_partitioner(),
        threads in 1usize..5,
    ) {
        let flat = Engine::new(Budget::with_threads(threads).unwrap().with_kernel(Kernel::Scalar))
            .measure_portfolio_all(&fos);
        let book = ShardedBook::partition(&fos, shards, &partitioner).unwrap();
        let sharded = Engine::new(
            Budget::with_threads(threads).unwrap().with_kernel(Kernel::Columnar),
        )
        .measure_book_all(&book);
        prop_assert_eq!(sharded.summaries, flat.summaries);
        prop_assert_eq!(sharded.offers, fos.len());
    }

    /// Parallel grouping + aggregation reproduces the sequential
    /// `aggregate_portfolio` exactly, group order included.
    #[test]
    fn parallel_aggregation_matches_sequential(
        fos in arb_portfolio(),
        est in 0i64..6,
        tft in 0i64..6,
        threads in 1usize..9,
    ) {
        let params = GroupingParams::with_tolerances(est, tft);
        let parallel = Engine::new(Budget::with_threads(threads).unwrap())
            .aggregate_portfolio(&fos, &params);
        prop_assert_eq!(parallel, aggregate_portfolio(&fos, &params));
    }

    /// The parallel Scenario 1 pipeline reproduces the sequential
    /// `schedule_via_aggregation` exactly — schedule, aggregate count and
    /// unrealizable count — at any thread count.
    #[test]
    fn schedule_portfolio_matches_sequential_pipeline(
        fos in arb_portfolio(),
        target in arb_target(),
        est in 0i64..6,
        tft in 0i64..6,
        threads in 1usize..9,
    ) {
        let problem = SchedulingProblem::new(fos, target);
        let params = GroupingParams::with_tolerances(est, tft);
        let scheduler = GreedyScheduler::new();
        let sequential = schedule_via_aggregation(&problem, &params, &scheduler).unwrap();
        let parallel = Engine::new(Budget::with_threads(threads).unwrap())
            .schedule_portfolio(&problem, &params, &scheduler)
            .unwrap();
        prop_assert_eq!(&parallel, &sequential);
        prop_assert!(problem.is_feasible(&parallel.schedule));
    }

    /// Scheduling knobs (threads, chunk size) are throughput-only for the
    /// Scenario 1 pipeline: 1 thread vs N threads vs a pinned chunk size
    /// all match bit for bit.
    #[test]
    fn schedule_portfolio_thread_and_chunk_invariance(
        fos in arb_portfolio(),
        target in arb_target(),
        threads in 2usize..9,
        chunk in 1usize..17,
    ) {
        let problem = SchedulingProblem::new(fos, target);
        let params = GroupingParams::with_tolerances(2, 2);
        let scheduler = GreedyScheduler::new();
        let one = Engine::sequential()
            .schedule_portfolio(&problem, &params, &scheduler)
            .unwrap();
        let many = Engine::new(Budget::with_threads(threads).unwrap())
            .schedule_portfolio(&problem, &params, &scheduler)
            .unwrap();
        let pinned = Engine::new(
            Budget::with_threads(threads).unwrap().with_chunk_size(chunk).unwrap(),
        )
        .schedule_portfolio(&problem, &params, &scheduler)
        .unwrap();
        prop_assert_eq!(&one, &many);
        prop_assert_eq!(&one, &pinned);
    }

    /// Sharding is invisible to measurement: any shard count, either
    /// partitioner, any thread/chunk budget — the sharded book's report
    /// carries bitwise-identical summaries (values, errors, counts,
    /// min/max) to the flat engine's.
    #[test]
    fn sharded_measure_matches_flat_engine(
        fos in arb_portfolio(),
        shards in 1usize..9,
        partitioner in arb_partitioner(),
        threads in 1usize..9,
        chunk in 1usize..17,
    ) {
        let budget = Budget::with_threads(threads).unwrap().with_chunk_size(chunk).unwrap();
        let engine = Engine::new(budget);
        let flat = engine.measure_portfolio_all(&fos);
        let book = ShardedBook::partition(&fos, shards, &partitioner).unwrap();
        let sharded = engine.measure_book_all(&book);
        prop_assert_eq!(sharded.summaries, flat.summaries);
        prop_assert_eq!(sharded.offers, fos.len());
    }

    /// Sharded aggregation reproduces the flat engine (and therefore the
    /// sequential `aggregate_portfolio`) exactly, group order included,
    /// under either partitioner — including a group-aware partition whose
    /// tolerances differ from the aggregation's own.
    #[test]
    fn sharded_aggregation_matches_flat_engine(
        fos in arb_portfolio(),
        shards in 1usize..9,
        partitioner in arb_partitioner(),
        est in 0i64..6,
        tft in 0i64..6,
        threads in 1usize..9,
    ) {
        let params = GroupingParams::with_tolerances(est, tft);
        let engine = Engine::new(Budget::with_threads(threads).unwrap());
        let book = ShardedBook::partition(&fos, shards, &partitioner).unwrap();
        let sharded = engine.aggregate_book(&book, &params);
        prop_assert_eq!(&sharded, &engine.aggregate_portfolio(&fos, &params));
        prop_assert_eq!(sharded, aggregate_portfolio(&fos, &params));
    }

    /// The sharded Scenario 1 pipeline reproduces the flat engine (and the
    /// sequential `schedule_via_aggregation`) exactly at any shard count,
    /// partitioner, and budget.
    #[test]
    fn sharded_schedule_matches_flat_engine(
        fos in arb_portfolio(),
        target in arb_target(),
        shards in 1usize..9,
        partitioner in arb_partitioner(),
        est in 0i64..6,
        tft in 0i64..6,
        threads in 1usize..9,
        chunk in 1usize..17,
    ) {
        let params = GroupingParams::with_tolerances(est, tft);
        let scheduler = GreedyScheduler::new();
        let budget = Budget::with_threads(threads).unwrap().with_chunk_size(chunk).unwrap();
        let engine = Engine::new(budget);
        let problem = SchedulingProblem::new(fos.clone(), target.clone());
        let flat = engine.schedule_portfolio(&problem, &params, &scheduler).unwrap();
        let book = ShardedBook::partition(&fos, shards, &partitioner).unwrap();
        let sharded = engine.schedule_book(&book, &target, &params, &scheduler).unwrap();
        prop_assert_eq!(&sharded, &flat);
        prop_assert_eq!(
            &sharded,
            &schedule_via_aggregation(&problem, &params, &scheduler).unwrap()
        );
        prop_assert!(problem.is_feasible(&sharded.schedule));
    }

    /// The sharded Scenario 2 pipeline reproduces the flat engine (and the
    /// sequential `Aggregator::run`) exactly at any shard count,
    /// partitioner, and budget.
    #[test]
    fn sharded_trade_matches_flat_engine(
        fos in arb_portfolio(),
        market in arb_market(),
        shards in 1usize..9,
        partitioner in arb_partitioner(),
        est in 0i64..6,
        tft in 0i64..6,
        min_lot in 0i64..8,
        threads in 1usize..9,
        chunk in 1usize..17,
    ) {
        let aggregator = Aggregator::new(GroupingParams::with_tolerances(est, tft), min_lot);
        let budget = Budget::with_threads(threads).unwrap().with_chunk_size(chunk).unwrap();
        let engine = Engine::new(budget);
        let book = ShardedBook::partition(&fos, shards, &partitioner).unwrap();
        let portfolio = Portfolio::from_offers(fos);
        let flat = engine.trade_portfolio(&portfolio, &aggregator, &market);
        let sharded = engine.trade_book(&book, &aggregator, &market);
        prop_assert_eq!(&sharded.outcome, &flat.outcome);
        prop_assert_eq!(sharded.aggregates, flat.aggregates);
        prop_assert_eq!(&sharded.outcome, &aggregator.run(&portfolio, &market));
    }

    /// Partitioning is lossless: the book reassembles to the exact input
    /// portfolio, and every shard's owner bookkeeping is consistent.
    #[test]
    fn sharded_book_round_trips_the_portfolio(
        fos in arb_portfolio(),
        shards in 1usize..9,
        partitioner in arb_partitioner(),
    ) {
        let book = ShardedBook::partition(&fos, shards, &partitioner).unwrap();
        prop_assert_eq!(book.len(), fos.len());
        prop_assert_eq!(book.shard_count(), shards);
        let reassembled = book.to_portfolio();
        prop_assert_eq!(reassembled.as_slice(), &fos[..]);
        for (g, fo) in fos.iter().enumerate() {
            prop_assert_eq!(book.offer(g), fo);
        }
    }

    /// The parallel Scenario 2 pipeline reproduces the sequential
    /// `Aggregator::run` exactly — orders, all cost accumulators, the
    /// baseline — at any thread count and chunk size.
    #[test]
    fn trade_portfolio_matches_sequential_aggregator(
        fos in arb_portfolio(),
        market in arb_market(),
        est in 0i64..6,
        tft in 0i64..6,
        min_lot in 0i64..8,
        threads in 1usize..9,
        chunk in 1usize..17,
    ) {
        let portfolio = Portfolio::from_offers(fos);
        let aggregator = Aggregator::new(GroupingParams::with_tolerances(est, tft), min_lot);
        let sequential = aggregator.run(&portfolio, &market);
        let budget = Budget::with_threads(threads).unwrap().with_chunk_size(chunk).unwrap();
        let traded = Engine::new(budget).trade_portfolio(&portfolio, &aggregator, &market);
        prop_assert_eq!(&traded.outcome, &sequential);
        prop_assert_eq!(
            traded.aggregates,
            traded.outcome.orders.len() + traded.outcome.rejected_lots
        );
    }
}
