//! `flexoffers_engine` — batched, multi-threaded evaluation over flex-offer
//! portfolios.
//!
//! The paper defines its measures per flex-offer; both of its scenarios (and
//! the ROADMAP north-star of serving millions of prosumers) evaluate them
//! over whole *portfolios*. This crate is the portfolio-scale execution
//! layer on top of the per-offer primitives:
//!
//! * [`Engine::measure_portfolio`] — every requested measure over N offers,
//!   chunked across `std::thread::scope` workers with a deterministic merge
//!   order, producing a [`PortfolioReport`];
//! * [`Engine::aggregate_portfolio`] — tolerance grouping plus per-group
//!   start-alignment aggregation, each group aggregated in parallel;
//! * [`Engine::schedule_portfolio`] — the full Scenario 1 pipeline
//!   (group → aggregate → schedule → realize) with the per-group and
//!   per-aggregate stages fanned out, bitwise identical to the sequential
//!   [`schedule_via_aggregation`](flexoffers_scheduling::schedule_via_aggregation);
//! * [`Engine::trade_portfolio`] — the full Scenario 2 pipeline
//!   (group → plan → settle) with per-aggregate parallelism, bitwise
//!   identical to the sequential
//!   [`Aggregator::run`](flexoffers_market::Aggregator::run);
//! * [`Engine::simulate`] — a [`Scenario`] (workload seed, tolerance and
//!   market knobs, scheduler choice) run end to end into a
//!   [`ScenarioReport`] with text/JSON rendering —
//!   [`Engine::simulate_portfolio`] / [`Engine::simulate_book`] run the
//!   same pipelines over a caller-supplied portfolio or book (the seam the
//!   live serving tier and the CLI's batch replay share);
//! * [`ShardedBook`] — the portfolio partitioned into K shards
//!   (hash-by-offer-id or tolerance-group-aware), with per-shard workers
//!   and a merge tier behind [`Engine::measure_book`],
//!   [`Engine::aggregate_book`], [`Engine::schedule_book`],
//!   [`Engine::trade_book`] and [`Engine::simulate_sharded`] — every one
//!   bitwise identical to its flat counterpart (see the [`shard`] module
//!   docs);
//! * [`parallel_map`] — the shared deterministic fan-out helper the engine
//!   and the experiment binaries use, so thread logic lives in one place.
//!
//! # Determinism
//!
//! Results are *bitwise identical* across thread counts and chunk sizes,
//! and bitwise identical to the sequential per-offer loop
//! ([`Measure::of_set`](flexoffers_measures::Measure::of_set)). Workers
//! only compute per-offer values; the reduction into set-level values
//! happens on the calling thread, in portfolio order, with the same
//! floating-point addition sequence the sequential loop performs. The
//! property suite in `tests/props.rs` pins this down.
//!
//! # Work hoisting
//!
//! Evaluating all eight measures naively recomputes the assignment-union
//! area (the dominant sub-computation) once per area measure. The engine
//! wraps each offer in a
//! [`PreparedOffer`](flexoffers_measures::PreparedOffer) exactly once per
//! pass, and every measure's `of_prepared` path reuses the cached
//! intermediates.
//!
//! # Quickstart
//!
//! ```
//! use flexoffers_engine::{Budget, Engine};
//! use flexoffers_model::{FlexOffer, Portfolio, Slice};
//!
//! let portfolio = Portfolio::from_offers(vec![
//!     FlexOffer::new(0, 2, vec![Slice::new(1, 3)?])?,
//!     FlexOffer::new(1, 5, vec![Slice::new(0, 2)?])?,
//! ]);
//! let engine = Engine::new(Budget::with_threads(2)?);
//! let report = engine.measure_portfolio_all(portfolio.as_slice());
//! assert_eq!(report.offers, 2);
//! assert_eq!(report.summaries.len(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod chunk;
pub mod engine;
pub mod report;
pub mod scenario;
pub mod scenario_report;
pub mod shard;

pub use budget::{Budget, EngineError, Kernel};
pub use chunk::{chunk_ranges, parallel_map};
pub use engine::{reduce_measure_rows, Engine, TradeOutcome};
pub use report::{MeasureSummary, PortfolioReport};
pub use scenario::{Scenario, ScenarioError, ScenarioKind, SchedulerChoice};
pub use scenario_report::{CorrelationSummary, MarketSummary, ScenarioReport, ScheduleSummary};
pub use shard::{splitmix64, stable_shard, Partitioner, Shard, ShardedBook};
