//! Scenario configuration and the engine's end-to-end simulation entry
//! point.
//!
//! The paper's two application scenarios — Scenario 1 scheduling a
//! portfolio toward a target profile, Scenario 2 trading aggregates on a
//! balancing market — share a workload (a seeded city portfolio), knobs
//! (grouping tolerances, scheduler, market parameters) and a reporting
//! shape. [`Scenario`] bundles the knobs, [`Engine::simulate`] runs the
//! selected pipeline through the parallel engine
//! ([`Engine::schedule_portfolio`] / [`Engine::trade_portfolio`]) and
//! returns a [`ScenarioReport`](crate::ScenarioReport).
//!
//! Everything is deterministic: the portfolio, target and price traces are
//! pure functions of the scenario's seed, and the engine's pipelines are
//! bitwise identical at any thread count, so two simulations of the same
//! scenario agree byte for byte regardless of the budget.

use std::error::Error;
use std::fmt;
use std::time::Instant;

use flexoffers_aggregation::GroupingParams;
use flexoffers_market::{baseline_load, Aggregator, LotDecision, SpotMarket};
use flexoffers_measures::all_measures;
use flexoffers_model::{Assignment, Portfolio};
use flexoffers_scheduling::{
    earliest_start_assignment, EarliestStartScheduler, GreedyScheduler, HillClimbScheduler,
    Schedule, Scheduler, SchedulingError, SchedulingProblem,
};
use flexoffers_timeseries::Series;
use flexoffers_workloads::price::{price_trace, PriceTraceConfig};
use flexoffers_workloads::res::{res_production_trace, ResTraceConfig};
use flexoffers_workloads::{city, city_stream};

use crate::budget::EngineError;
use crate::chunk::parallel_map;
use crate::engine::Engine;
use crate::scenario_report::{CorrelationSummary, MarketSummary, ScenarioReport, ScheduleSummary};
use crate::shard::ShardedBook;

/// Which of the paper's two application scenarios to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Scenario 1: schedule the portfolio toward a renewable-production
    /// target profile via aggregation.
    Schedule,
    /// Scenario 2: trade the aggregated portfolio on a spot market with
    /// imbalance settlement.
    Market,
}

impl ScenarioKind {
    /// The CLI-facing scenario name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Schedule => "schedule",
            ScenarioKind::Market => "market",
        }
    }

    /// Parses a CLI-facing scenario name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "schedule" => Some(ScenarioKind::Schedule),
            "market" => Some(ScenarioKind::Market),
            _ => None,
        }
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which scheduler drives the Scenario 1 aggregate problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerChoice {
    /// One-pass greedy residual tracking (fast, deterministic).
    Greedy,
    /// Seeded stochastic hill-climbing on top of greedy.
    HillClimb {
        /// RNG seed (deterministic under equal seeds).
        seed: u64,
        /// Ruin-and-recreate step budget.
        iterations: usize,
    },
}

impl SchedulerChoice {
    /// The CLI-facing scheduler name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerChoice::Greedy => "greedy",
            SchedulerChoice::HillClimb { .. } => "hillclimb",
        }
    }

    /// Parses a CLI-facing scheduler name (hill-climb gets default knobs).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "greedy" => Some(SchedulerChoice::Greedy),
            "hillclimb" => Some(SchedulerChoice::HillClimb {
                seed: 42,
                iterations: 512,
            }),
            _ => None,
        }
    }

    /// Constructs the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerChoice::Greedy => Box::new(GreedyScheduler::new()),
            SchedulerChoice::HillClimb { seed, iterations } => {
                Box::new(HillClimbScheduler::new(seed, iterations))
            }
        }
    }
}

/// A complete scenario configuration: workload source, tolerance knobs,
/// scheduler choice, and market parameters. Every derived artefact
/// (portfolio, target profile, spot prices) is a pure function of these
/// fields.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scenario {
    /// Which application scenario to run.
    pub kind: ScenarioKind,
    /// Seed for the portfolio and the target/price traces.
    pub seed: u64,
    /// City size; [`flexoffers_workloads::city`] turns this into roughly
    /// 3.4 flex-offers per household.
    pub households: usize,
    /// Grouping tolerances for aggregation (both scenarios).
    pub grouping: GroupingParams,
    /// Scheduler for the Scenario 1 aggregate problem.
    pub scheduler: SchedulerChoice,
    /// Horizon of the target and price traces, in days.
    pub days: usize,
    /// Scenario 2 minimum tradeable lot volume.
    pub min_lot: i64,
    /// Scenario 2 imbalance penalty, as a multiple of the peak spot price.
    pub penalty_multiplier: f64,
}

impl Scenario {
    /// A scenario over a seeded city portfolio with the default knobs:
    /// seed 7, grouping tolerances (2, 2), greedy scheduling, a 2-day
    /// horizon, minimum lot 25, penalty multiplier 2.0.
    pub fn city_portfolio(kind: ScenarioKind, households: usize) -> Self {
        Self {
            kind,
            seed: 7,
            households,
            grouping: GroupingParams::with_tolerances(2, 2),
            scheduler: SchedulerChoice::Greedy,
            days: 2,
            min_lot: 25,
            penalty_multiplier: 2.0,
        }
    }

    /// The same scenario under a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The scenario's portfolio (deterministic under the seed).
    pub fn portfolio(&self) -> Portfolio {
        city(self.seed, self.households)
    }

    /// The Scenario 1 target profile: a renewable production trace whose
    /// capacity scales with the portfolio size, so imbalance numbers stay
    /// comparable across city sizes.
    pub fn target_for(&self, offers: usize) -> Series<i64> {
        res_production_trace(&ResTraceConfig {
            seed: self.seed,
            days: self.days,
            solar_capacity: (offers as i64) / 2,
            wind_capacity: (offers as i64) * 3 / 4,
        })
    }

    /// The Scenario 2 spot market (deterministic under the seed).
    ///
    /// # Panics
    ///
    /// Panics if `penalty_multiplier < 1` — scenario construction keeps it
    /// valid, so a panic here means the field was edited out of range.
    pub fn spot_market(&self) -> SpotMarket {
        SpotMarket::new(
            price_trace(&PriceTraceConfig {
                seed: self.seed,
                days: self.days,
                ..PriceTraceConfig::default()
            }),
            self.penalty_multiplier,
        )
        .expect("scenario penalty multiplier is >= 1")
    }

    /// The Scenario 2 aggregator (safe planning).
    pub fn aggregator(&self) -> Aggregator {
        Aggregator::new(self.grouping, self.min_lot)
    }
}

/// Errors running a scenario simulation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The scenario's portfolio has no flex-offers (zero households).
    EmptyPortfolio,
    /// The Scenario 1 scheduler failed on the aggregate problem.
    Scheduling(SchedulingError),
    /// The sharded run was misconfigured (e.g. a zero shard count).
    Engine(EngineError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyPortfolio => {
                write!(f, "empty portfolio — nothing to simulate")
            }
            ScenarioError::Scheduling(e) => write!(f, "scheduling the aggregate problem: {e}"),
            ScenarioError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ScenarioError {}

impl From<SchedulingError> for ScenarioError {
    fn from(e: SchedulingError) -> Self {
        ScenarioError::Scheduling(e)
    }
}

impl From<EngineError> for ScenarioError {
    fn from(e: EngineError) -> Self {
        ScenarioError::Engine(e)
    }
}

impl Engine {
    /// Runs `scenario` end to end through the parallel pipelines and
    /// reports the outcome.
    ///
    /// * [`ScenarioKind::Schedule`]: generate the portfolio and target,
    ///   run [`Engine::schedule_portfolio`], compare against the
    ///   earliest-start baseline, and correlate each measure's per-offer
    ///   value with the start shift the schedule realized.
    /// * [`ScenarioKind::Market`]: generate the portfolio and market, run
    ///   the [`Engine::trade_portfolio`] pipeline, and correlate each
    ///   measure's per-aggregate value with the aggregate's realized
    ///   savings over its members' baseline cost.
    ///
    /// Reports are bitwise identical across thread counts and chunk sizes
    /// (the [`ScenarioReport::json`](crate::ScenarioReport::json) mirror
    /// excludes wall-clock fields for exactly this reason).
    pub fn simulate(&self, scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
        self.simulate_portfolio(scenario, &scenario.portfolio())
    }

    /// Runs `scenario`'s pipeline over a *caller-supplied* portfolio
    /// instead of the scenario's own generated city — the entry point for
    /// portfolios that arrived some other way (a file, a replayed event
    /// stream). The scenario still contributes every knob and derived
    /// trace: grouping, scheduler, target profile (scaled to the given
    /// portfolio's size), spot market. [`Engine::simulate`] is exactly
    /// this over [`Scenario::portfolio`].
    pub fn simulate_portfolio(
        &self,
        scenario: &Scenario,
        portfolio: &Portfolio,
    ) -> Result<ScenarioReport, ScenarioError> {
        let started = Instant::now();
        if portfolio.is_empty() {
            return Err(ScenarioError::EmptyPortfolio);
        }
        match scenario.kind {
            ScenarioKind::Schedule => self.simulate_schedule(scenario, portfolio, started),
            ScenarioKind::Market => Ok(self.simulate_market(scenario, portfolio, started)),
        }
    }

    /// Runs `scenario`'s pipeline over an already-partitioned
    /// [`ShardedBook`] — the book counterpart of
    /// [`Engine::simulate_portfolio`], bitwise identical to it (and to the
    /// flat [`Engine::simulate`]) for a book holding the same logical
    /// portfolio, at any shard count and budget.
    pub fn simulate_book(
        &self,
        scenario: &Scenario,
        book: &ShardedBook,
    ) -> Result<ScenarioReport, ScenarioError> {
        let started = Instant::now();
        if book.is_empty() {
            return Err(ScenarioError::EmptyPortfolio);
        }
        match scenario.kind {
            ScenarioKind::Schedule => self.simulate_schedule_book(scenario, book, started),
            ScenarioKind::Market => Ok(self.simulate_market_book(scenario, book, started)),
        }
    }

    /// [`Engine::simulate`] over a sharded book: the scenario's city
    /// portfolio is *streamed* straight into `shards` hash-partitioned
    /// shard buffers ([`ShardedBook::collect_hashed`] over
    /// [`city_stream`] — no full-portfolio `Vec` is ever materialised),
    /// and the selected pipeline runs through the book paths
    /// ([`Engine::schedule_book`] / [`Engine::trade_book`]).
    ///
    /// The report is **bitwise identical** to the unsharded
    /// [`Engine::simulate`] of the same scenario at any shard count,
    /// thread count and chunk size — the `--json` mirror `cmp`s equal in
    /// CI. A zero shard count is rejected with
    /// [`ScenarioError::Engine`]\([`EngineError::ZeroShards`]).
    pub fn simulate_sharded(
        &self,
        scenario: &Scenario,
        shards: usize,
    ) -> Result<ScenarioReport, ScenarioError> {
        let book =
            ShardedBook::collect_hashed(city_stream(scenario.seed, scenario.households), shards)?;
        self.simulate_book(scenario, &book)
    }

    fn simulate_schedule(
        &self,
        scenario: &Scenario,
        portfolio: &Portfolio,
        started: Instant,
    ) -> Result<ScenarioReport, ScenarioError> {
        let offers = portfolio.as_slice();
        let target = scenario.target_for(offers.len());
        let problem = SchedulingProblem::new(offers.to_vec(), target);
        let scheduler = scenario.scheduler.build();
        let outcome = self.schedule_portfolio(&problem, &scenario.grouping, scheduler.as_ref())?;
        let baseline = EarliestStartScheduler.schedule(&problem)?;
        let imbalance_before = baseline.imbalance(problem.target());
        let imbalance_after = outcome.schedule.imbalance(problem.target());

        // Which measure predicted how much an offer's flexibility got
        // used? Per-offer measure values (parallel, merged in portfolio
        // order) against the realized start shift.
        let rows = flatten_rows(self.per_offer_rows(offers, &all_measures()));
        let shifts: Vec<f64> = outcome
            .schedule
            .assignments()
            .iter()
            .zip(offers)
            .map(|(a, fo)| (a.start() - fo.earliest_start()) as f64)
            .collect();
        Ok(self.schedule_report(
            scenario,
            offers.len(),
            &outcome,
            imbalance_before,
            imbalance_after,
            &rows,
            &shifts,
            started,
        ))
    }

    fn simulate_schedule_book(
        &self,
        scenario: &Scenario,
        book: &ShardedBook,
        started: Instant,
    ) -> Result<ScenarioReport, ScenarioError> {
        let target = scenario.target_for(book.len());
        let scheduler = scenario.scheduler.build();
        let outcome = self.schedule_book(book, &target, &scenario.grouping, scheduler.as_ref())?;

        // The earliest-start baseline is a pure per-offer function:
        // per-shard workers compute their own assignments, the merge tier
        // scatters them to logical order — the same schedule
        // `EarliestStartScheduler` produces on the flat portfolio.
        let per_shard: Vec<Vec<Assignment>> =
            parallel_map(book.shards(), self.budget().threads(), |shard| {
                shard
                    .offers()
                    .iter()
                    .map(earliest_start_assignment)
                    .collect()
            });
        let baseline = Schedule::new(book.scatter(per_shard));
        let imbalance_before = baseline.imbalance(&target);
        let imbalance_after = outcome.schedule.imbalance(&target);

        let rows = flatten_rows(self.book_rows(book, &all_measures()));
        let shifts: Vec<f64> = outcome
            .schedule
            .assignments()
            .iter()
            .enumerate()
            .map(|(g, a)| (a.start() - book.offer(g).earliest_start()) as f64)
            .collect();
        Ok(self.schedule_report(
            scenario,
            book.len(),
            &outcome,
            imbalance_before,
            imbalance_after,
            &rows,
            &shifts,
            started,
        ))
    }

    /// Assembles the Scenario 1 report from an already-run pipeline — one
    /// code path for the flat, sharded, *and live-serving* paths, so their
    /// reports cannot drift. `rows` are the per-offer measure values
    /// (errors flattened, see [`flatten_rows`]) and `shifts` the realized
    /// start shifts, both in portfolio order.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_report(
        &self,
        scenario: &Scenario,
        offers: usize,
        outcome: &flexoffers_scheduling::PipelineOutcome,
        imbalance_before: flexoffers_scheduling::Imbalance,
        imbalance_after: flexoffers_scheduling::Imbalance,
        rows: &[Vec<Option<f64>>],
        shifts: &[f64],
        started: Instant,
    ) -> ScenarioReport {
        ScenarioReport {
            scenario: scenario.kind,
            seed: scenario.seed,
            households: scenario.households,
            offers,
            aggregates: outcome.aggregates,
            threads: self.budget().threads(),
            elapsed: started.elapsed(),
            schedule: Some(ScheduleSummary {
                scheduler: scenario.scheduler.name(),
                unrealizable_plans: outcome.unrealizable_plans,
                imbalance_before,
                imbalance_after,
            }),
            market: None,
            correlations: correlate(rows, shifts),
        }
    }

    fn simulate_market(
        &self,
        scenario: &Scenario,
        portfolio: &Portfolio,
        started: Instant,
    ) -> ScenarioReport {
        let offers = portfolio.as_slice();
        let aggregator = scenario.aggregator();
        let aggregates = self.aggregate_portfolio(offers, &aggregator.grouping);
        let baseline = self.baseline_load_parallel(offers);
        self.market_report(scenario, offers.len(), &aggregates, &baseline, started)
    }

    fn simulate_market_book(
        &self,
        scenario: &Scenario,
        book: &ShardedBook,
        started: Instant,
    ) -> ScenarioReport {
        let aggregator = scenario.aggregator();
        let aggregates = self.aggregate_book(book, &aggregator.grouping);
        let baseline = self.baseline_load_book(book);
        self.market_report(scenario, book.len(), &aggregates, &baseline, started)
    }

    /// Runs the market evaluation over already-gathered aggregates and
    /// assembles the Scenario 2 report — one code path for the flat,
    /// sharded, *and live-serving* paths, so their reports cannot drift.
    /// `baseline` is the portfolio's no-flexibility load (callers with a
    /// partitioned book fold per-shard partials; integer series addition
    /// makes any partition exact).
    pub fn market_report(
        &self,
        scenario: &Scenario,
        offers: usize,
        aggregates: &[flexoffers_aggregation::Aggregate],
        baseline: &Series<i64>,
        started: Instant,
    ) -> ScenarioReport {
        let market = scenario.spot_market();
        let aggregator = scenario.aggregator();

        // One parallel pass per aggregate: the market decision, the eight
        // measure values of the aggregate flex-offer, and — for admitted
        // lots only — the members' baseline cost (the reference their
        // savings are quoted against; rejected lots never trade, and their
        // baseline was already priced inside `evaluate`).
        let measures = all_measures();
        type Evaluated = (LotDecision, Vec<Option<f64>>, Option<f64>);
        let evaluated: Vec<Evaluated> = parallel_map(aggregates, self.budget().threads(), |agg| {
            let decision = aggregator.evaluate(agg, &market);
            let prepared = flexoffers_measures::PreparedOffer::new(agg.flexoffer());
            let values = measures
                .iter()
                .map(|m| m.of_prepared(&prepared).ok())
                .collect();
            let member_baseline = match &decision {
                LotDecision::Admitted(_) => Some(market.cost_of(&baseline_load(agg.members()))),
                LotDecision::Rejected { .. } => None,
            };
            (decision, values, member_baseline)
        });

        // Correlate per-aggregate measure values with realized savings.
        let mut rows = Vec::new();
        let mut savings = Vec::new();
        for (decision, values, member_baseline) in &evaluated {
            if let LotDecision::Admitted(order) = decision {
                rows.push(values.clone());
                let member_baseline = member_baseline.expect("admitted lots carry a baseline");
                savings
                    .push(member_baseline - (order.cost + market.imbalance_cost(order.imbalance)));
            }
        }
        let correlations = correlate(&rows, &savings);

        let baseline_cost = market.cost_of(baseline);
        let outcome = Aggregator::settle(
            evaluated.into_iter().map(|(decision, _, _)| decision),
            baseline_cost,
            &market,
        );

        ScenarioReport {
            scenario: scenario.kind,
            seed: scenario.seed,
            households: scenario.households,
            offers,
            aggregates: aggregates.len(),
            threads: self.budget().threads(),
            elapsed: started.elapsed(),
            schedule: None,
            market: Some(MarketSummary {
                orders: outcome.orders.len(),
                rejected_lots: outcome.rejected_lots,
                procurement_cost: outcome.procurement_cost,
                imbalance_cost: outcome.imbalance_cost,
                rejected_cost: outcome.rejected_cost,
                baseline_cost: outcome.baseline_cost,
                savings: outcome.savings(),
                relative_savings: outcome.relative_savings(),
            }),
            correlations,
        }
    }
}

/// Errors flattened to `None` for the correlation filter — the adapter
/// between [`Engine::per_offer_rows`] output and [`correlate`]. Public so
/// the serving tier can feed its cached per-shard rows through the exact
/// pipeline the scenario reports use.
pub fn flatten_rows(
    rows: Vec<Vec<Result<f64, flexoffers_measures::MeasureError>>>,
) -> Vec<Vec<Option<f64>>> {
    rows.into_iter()
        .map(|row| row.into_iter().map(Result::ok).collect())
        .collect()
}

/// Pearson correlation of each measure's column in `rows` against `ys`,
/// skipping rows where the measure errored or either side is non-finite.
/// One implementation for the flat, sharded, and live-serving report
/// paths, so their correlation tables cannot drift.
pub fn correlate(rows: &[Vec<Option<f64>>], ys: &[f64]) -> Vec<CorrelationSummary> {
    all_measures()
        .iter()
        .enumerate()
        .map(|(j, m)| {
            let mut xs = Vec::new();
            let mut matched = Vec::new();
            for (row, y) in rows.iter().zip(ys) {
                if let Some(v) = row[j] {
                    if v.is_finite() && y.is_finite() {
                        xs.push(v);
                        matched.push(*y);
                    }
                }
            }
            CorrelationSummary {
                measure: m.short_name(),
                r: flexoffers_market::pearson(&xs, &matched),
                evaluated: xs.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn kind_and_scheduler_parse_round_trip() {
        for kind in [ScenarioKind::Schedule, ScenarioKind::Market] {
            assert_eq!(ScenarioKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ScenarioKind::parse("arbitrage"), None);
        for name in ["greedy", "hillclimb"] {
            assert_eq!(SchedulerChoice::parse(name).unwrap().name(), name);
        }
        assert_eq!(SchedulerChoice::parse("simplex"), None);
    }

    #[test]
    fn scenario_artefacts_are_deterministic() {
        let s = Scenario::city_portfolio(ScenarioKind::Schedule, 30);
        assert_eq!(s.portfolio(), s.portfolio());
        assert_eq!(s.target_for(100), s.target_for(100));
        assert_eq!(s.spot_market(), s.spot_market());
        assert_ne!(
            s.portfolio(),
            s.with_seed(8).portfolio(),
            "seed must matter"
        );
    }

    #[test]
    fn empty_portfolio_is_rejected() {
        let s = Scenario::city_portfolio(ScenarioKind::Schedule, 0);
        let err = Engine::sequential().simulate(&s).unwrap_err();
        assert_eq!(err, ScenarioError::EmptyPortfolio);
        assert!(err.to_string().contains("empty portfolio"));
    }

    #[test]
    fn schedule_scenario_reports_improvement_fields() {
        let s = Scenario::city_portfolio(ScenarioKind::Schedule, 30);
        let report = Engine::new(Budget::with_threads(2).unwrap())
            .simulate(&s)
            .unwrap();
        assert_eq!(report.scenario, ScenarioKind::Schedule);
        assert!(report.offers > 0);
        assert!(report.aggregates > 0);
        let summary = report.schedule.as_ref().expect("schedule summary");
        assert!(summary.imbalance_after.l1 <= summary.imbalance_before.l1);
        assert!(report.market.is_none());
        assert_eq!(report.correlations.len(), 8);
    }

    #[test]
    fn market_scenario_reports_settlement_fields() {
        let s = Scenario::city_portfolio(ScenarioKind::Market, 30);
        let report = Engine::new(Budget::with_threads(2).unwrap())
            .simulate(&s)
            .unwrap();
        assert_eq!(report.scenario, ScenarioKind::Market);
        let summary = report.market.as_ref().expect("market summary");
        assert!(summary.baseline_cost > 0.0);
        assert_eq!(
            summary.orders + summary.rejected_lots,
            report.aggregates,
            "every aggregate is either traded or rejected"
        );
        assert!(report.schedule.is_none());
    }

    #[test]
    fn market_summary_pins_to_trade_portfolio_exactly() {
        // The simulate path re-wires the same building blocks as
        // trade_portfolio for correlation access; this pins the two market
        // paths to each other so they cannot silently diverge.
        let s = Scenario::city_portfolio(ScenarioKind::Market, 40);
        let engine = Engine::new(Budget::with_threads(3).unwrap());
        let report = engine.simulate(&s).unwrap();
        let traded = engine.trade_portfolio(&s.portfolio(), &s.aggregator(), &s.spot_market());
        let m = report.market.expect("market summary");
        assert_eq!(m.orders, traded.outcome.orders.len());
        assert_eq!(m.rejected_lots, traded.outcome.rejected_lots);
        assert_eq!(m.procurement_cost, traded.outcome.procurement_cost);
        assert_eq!(m.imbalance_cost, traded.outcome.imbalance_cost);
        assert_eq!(m.rejected_cost, traded.outcome.rejected_cost);
        assert_eq!(m.baseline_cost, traded.outcome.baseline_cost);
        assert_eq!(m.savings, traded.outcome.savings());
        assert_eq!(m.relative_savings, traded.outcome.relative_savings());
        assert_eq!(report.aggregates, traded.aggregates);
    }

    #[test]
    fn simulate_is_bitwise_identical_across_thread_counts() {
        for kind in [ScenarioKind::Schedule, ScenarioKind::Market] {
            let s = Scenario::city_portfolio(kind, 40);
            let one = Engine::sequential().simulate(&s).unwrap();
            let four = Engine::new(Budget::with_threads(4).unwrap())
                .simulate(&s)
                .unwrap();
            assert_eq!(
                serde_json::to_string(&one.json()).unwrap(),
                serde_json::to_string(&four.json()).unwrap(),
                "{kind} scenario diverged across thread counts"
            );
        }
    }

    #[test]
    fn simulate_sharded_is_bitwise_identical_to_flat_simulate() {
        for kind in [ScenarioKind::Schedule, ScenarioKind::Market] {
            let s = Scenario::city_portfolio(kind, 40);
            let flat = Engine::new(Budget::with_threads(2).unwrap())
                .simulate(&s)
                .unwrap();
            for shards in [1, 3, 8, 200] {
                let sharded = Engine::new(Budget::with_threads(4).unwrap())
                    .simulate_sharded(&s, shards)
                    .unwrap();
                assert_eq!(
                    serde_json::to_string(&flat.json()).unwrap(),
                    serde_json::to_string(&sharded.json()).unwrap(),
                    "{kind} scenario diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn simulate_sharded_rejects_zero_shards_and_empty_portfolios() {
        let s = Scenario::city_portfolio(ScenarioKind::Market, 40);
        let err = Engine::sequential().simulate_sharded(&s, 0).unwrap_err();
        assert_eq!(err, ScenarioError::Engine(EngineError::ZeroShards));
        assert!(err.to_string().contains("shard count must be at least 1"));

        let empty = Scenario::city_portfolio(ScenarioKind::Schedule, 0);
        assert_eq!(
            Engine::sequential()
                .simulate_sharded(&empty, 4)
                .unwrap_err(),
            ScenarioError::EmptyPortfolio
        );
    }
}
