//! The engine's streaming summary type: what a portfolio pass produced,
//! how fast, and per-measure detail — consumed by `flexctl measure
//! --portfolio`, the experiment binaries, and the benchmark reporter.

use std::time::Duration;

use flexoffers_measures::MeasureError;
use serde::Serialize;

/// One measure's outcome over a portfolio.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasureSummary {
    /// The measure's Table 1 column name.
    pub measure: &'static str,
    /// The set-level value under the measure's canonical set semantics, or
    /// the first per-offer error in portfolio order (exactly what the
    /// sequential `of_set` loop returns).
    pub value: Result<f64, MeasureError>,
    /// Offers the measure evaluated successfully.
    pub evaluated: usize,
    /// Offers the measure rejected.
    pub failed: usize,
    /// Smallest per-offer value, over successful evaluations.
    pub min: Option<f64>,
    /// Largest per-offer value, over successful evaluations.
    pub max: Option<f64>,
}

/// The result of one portfolio measurement pass.
#[derive(Clone, Debug)]
pub struct PortfolioReport {
    /// Portfolio size.
    pub offers: usize,
    /// Worker threads the pass ran with.
    pub threads: usize,
    /// Chunk size the pass used (derived or pinned; see
    /// [`Budget::chunk_size_for`](crate::Budget::chunk_size_for)).
    pub chunk_size: usize,
    /// Wall-clock duration of the pass.
    pub elapsed: Duration,
    /// Per-measure outcomes, in the order the measures were given.
    pub summaries: Vec<MeasureSummary>,
}

impl PortfolioReport {
    /// Throughput of the pass, in offers per second (0 for an instant or
    /// empty pass).
    pub fn offers_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.offers as f64 / secs
        } else {
            0.0
        }
    }

    /// Renders the report as an aligned text table, one measure per line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "portfolio: {} offers · {} thread(s) · chunk {} · {:.1} ms · {:.0} offers/s\n",
            self.offers,
            self.threads,
            self.chunk_size,
            self.elapsed.as_secs_f64() * 1e3,
            self.offers_per_second(),
        );
        out.push_str(&format!(
            "{:<14} {:>16} {:>9} {:>14} {:>14}\n",
            "measure", "set value", "offers", "min", "max"
        ));
        for s in &self.summaries {
            match &s.value {
                Ok(v) => out.push_str(&format!(
                    "{:<14} {:>16.6} {:>9} {:>14.4} {:>14.4}\n",
                    s.measure,
                    v,
                    s.evaluated,
                    s.min.unwrap_or(f64::NAN),
                    s.max.unwrap_or(f64::NAN),
                )),
                Err(e) => out.push_str(&format!("{:<14} n/a ({e})\n", s.measure)),
            }
        }
        out
    }

    /// A serialisable mirror of the report containing only the
    /// deterministic fields (errors flattened to strings) for `--json`
    /// consumers. Threads, chunk size and timing are deliberately
    /// excluded: everything in the mirror is a pure function of the
    /// portfolio and the measure set, so equal portfolios serialise to
    /// equal bytes at any budget and any shard count — the property the
    /// CI determinism smokes `cmp`.
    pub fn json(&self) -> PortfolioReportJson {
        PortfolioReportJson {
            offers: self.offers,
            measures: self
                .summaries
                .iter()
                .map(|s| MeasureSummaryJson {
                    measure: s.measure,
                    value: s.value.as_ref().ok().copied(),
                    error: s.value.as_ref().err().map(ToString::to_string),
                    evaluated: s.evaluated,
                    failed: s.failed,
                    min: s.min,
                    max: s.max,
                })
                .collect(),
        }
    }
}

/// Serialisable mirror of [`PortfolioReport`] (deterministic fields only —
/// no threads, no chunk size, no timing).
#[derive(Clone, Debug, Serialize)]
pub struct PortfolioReportJson {
    /// Portfolio size.
    pub offers: usize,
    /// Per-measure outcomes.
    pub measures: Vec<MeasureSummaryJson>,
}

/// Serialisable mirror of [`MeasureSummary`].
#[derive(Clone, Debug, Serialize)]
pub struct MeasureSummaryJson {
    /// The measure's Table 1 column name.
    pub measure: &'static str,
    /// The set-level value, when defined.
    pub value: Option<f64>,
    /// The error message, when the measure does not apply.
    pub error: Option<String>,
    /// Offers evaluated successfully.
    pub evaluated: usize,
    /// Offers rejected.
    pub failed: usize,
    /// Smallest per-offer value.
    pub min: Option<f64>,
    /// Largest per-offer value.
    pub max: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PortfolioReport {
        PortfolioReport {
            offers: 2,
            threads: 4,
            chunk_size: 1,
            elapsed: Duration::from_millis(10),
            summaries: vec![
                MeasureSummary {
                    measure: "Time",
                    value: Ok(6.0),
                    evaluated: 2,
                    failed: 0,
                    min: Some(1.0),
                    max: Some(5.0),
                },
                MeasureSummary {
                    measure: "Rel. Area",
                    value: Err(MeasureError::UndefinedDenominator),
                    evaluated: 0,
                    failed: 2,
                    min: None,
                    max: None,
                },
            ],
        }
    }

    #[test]
    fn render_lists_values_and_errors() {
        let text = sample().render();
        assert!(text.contains("2 offers"));
        assert!(text.contains("Time"));
        assert!(text.contains("6.000000"));
        assert!(text.contains("Rel. Area"));
        assert!(text.contains("n/a"));
    }

    #[test]
    fn throughput_is_offers_over_elapsed() {
        let r = sample();
        assert!((r.offers_per_second() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn json_mirror_splits_value_and_error() {
        let j = sample().json();
        assert_eq!(j.measures[0].value, Some(6.0));
        assert_eq!(j.measures[0].error, None);
        assert_eq!(j.measures[1].value, None);
        assert!(j.measures[1]
            .error
            .as_deref()
            .unwrap()
            .contains("|cmin| + |cmax|"));
        let text = serde_json::to_string(&j).expect("report serialises");
        assert!(text.contains("\"offers\":2"));
    }

    #[test]
    fn json_mirror_excludes_budget_and_wall_clock_fields() {
        // The mirror must be a pure function of the portfolio so sharded,
        // flat, and any-thread-count runs serialise to identical bytes.
        let text = serde_json::to_string(&sample().json()).unwrap();
        assert!(!text.contains("threads"));
        assert!(!text.contains("chunk_size"));
        assert!(!text.contains("elapsed"));
        assert!(!text.contains("offers_per_second"));
    }
}
