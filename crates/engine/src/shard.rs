//! Sharded portfolio books: partition a multi-million-offer portfolio into
//! K shards, run the engine's pipelines per shard, and merge
//! deterministically.
//!
//! The flat [`Engine`](crate::Engine) walks one contiguous `Portfolio`;
//! that is the bottleneck the ROADMAP's million-offer north star hits
//! first — one giant allocation, one chunked loop. A [`ShardedBook`]
//! splits the book into per-shard buffers (built eagerly from a slice or
//! lazily from an offer stream), per-shard workers run the existing
//! measure/baseline passes independently, and a merge tier reduces shard
//! results in a fixed global order. Aggregation-based pipelines
//! (schedule, trade) keep their parallel unit — the tolerance group —
//! computed *globally* from 16-byte `(tes, tf)` keys
//! ([`flexoffers_aggregation::group_keys`]), because shard-local grouping
//! would change group boundaries and with them the results.
//!
//! # Determinism
//!
//! Every book pipeline is **bitwise identical** to its flat counterpart at
//! any (shards × threads × chunk) combination and under either
//! [`Partitioner`]:
//!
//! * measurement scatters per-offer rows back to global portfolio order
//!   and reduces them with the exact code path
//!   [`Engine::measure_portfolio`] uses;
//! * grouping is a pure function of the global `(tes, tf)` keys, never of
//!   the partition, so aggregates come out in the flat engine's group
//!   order with the flat engine's contents;
//! * the baseline load is summed per shard — integer series addition is
//!   exact and order-insensitive;
//! * scheduling and settlement folds run on the merge tier in the same
//!   order the flat pipelines use.
//!
//! The property suite in `tests/props.rs` pins flat/sharded agreement
//! across random portfolios, shard counts, budgets, and both partitioners.

use flexoffers_aggregation::{aggregate, group_keys, Aggregate, GroupingParams};
use flexoffers_market::{Aggregator, LotDecision, SpotMarket};
use flexoffers_measures::{all_measures, Measure, MeasureError};
use flexoffers_model::{FlexOffer, Portfolio};
use flexoffers_scheduling::{PipelineOutcome, Scheduler, SchedulingError};
use flexoffers_timeseries::ops::sum_series;
use flexoffers_timeseries::Series;
use std::time::Instant;

use crate::budget::EngineError;
use crate::chunk::parallel_map;
use crate::engine::{reduce_measure_rows, Engine, TradeOutcome};
use crate::report::PortfolioReport;

/// How offers are assigned to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Partitioner {
    /// Shard by a stable 64-bit mix of the offer's id (its position in the
    /// logical portfolio): `splitmix64(id) % shards`. Spreads any arrival
    /// order evenly and supports streaming construction
    /// ([`ShardedBook::collect_hashed`]), but tolerance groups may straddle
    /// shards — group-level work then gathers members across shards.
    HashById,
    /// Shard whole tolerance groups: the global grouping under the given
    /// [`GroupingParams`] is computed first, then each group lands on the
    /// currently least-loaded shard (ties to the lowest shard index). A
    /// group never straddles shards, so group-level pipelines touch only
    /// shard-local offers. Requires the whole portfolio up front.
    GroupAware(GroupingParams),
}

impl Partitioner {
    /// A short human-readable label (reports, bench rows).
    pub fn name(&self) -> &'static str {
        match self {
            Partitioner::HashById => "hash-by-id",
            Partitioner::GroupAware(_) => "group-aware",
        }
    }
}

/// `splitmix64` — a stable, platform-independent 64-bit mix. The standard
/// library's `DefaultHasher` is explicitly not stable across releases, and
/// shard placement must never silently change under a toolchain bump.
/// Public because every stable hash in the workspace (shard placement
/// here, the serving tier's group-key digests) must share one definition.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The [`Partitioner::HashById`] placement function: which of `shards`
/// shards owns the offer with logical id `id` (`splitmix64(id) % shards`).
/// Exposed so the serving tier's live book routes streamed adds to the
/// exact shard a batch [`ShardedBook::collect_hashed`] build would pick.
///
/// # Panics
///
/// Panics if `shards` is zero — callers guard with
/// [`EngineError::ZeroShards`] first, exactly as the book constructors do.
pub fn stable_shard(id: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be at least 1");
    (splitmix64(id) % shards as u64) as usize
}

/// One shard of a [`ShardedBook`]: its offers plus the global (logical
/// portfolio) index of each.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Shard {
    offers: Vec<FlexOffer>,
    global: Vec<usize>,
}

impl Shard {
    /// The shard's offers, in shard-local order.
    pub fn offers(&self) -> &[FlexOffer] {
        &self.offers
    }

    /// `global_indices()[i]` is the logical-portfolio position of
    /// `offers()[i]`.
    pub fn global_indices(&self) -> &[usize] {
        &self.global
    }

    /// Number of offers in this shard.
    pub fn len(&self) -> usize {
        self.offers.len()
    }

    /// `true` when the shard holds no offers (legal: more shards than
    /// offers simply leaves some shards empty).
    pub fn is_empty(&self) -> bool {
        self.offers.is_empty()
    }
}

/// A portfolio partitioned into K shards, plus the owner table mapping
/// every logical index back to its shard — the data layer under the
/// engine's `*_book` pipelines.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedBook {
    shards: Vec<Shard>,
    /// `owners[g] = (shard, local)` for logical offer `g`.
    owners: Vec<(usize, usize)>,
}

impl ShardedBook {
    /// Partitions a borrowed offer slice (offers are cloned into shards).
    pub fn partition(
        offers: &[FlexOffer],
        shards: usize,
        partitioner: &Partitioner,
    ) -> Result<Self, EngineError> {
        Self::from_offers(offers.to_vec(), shards, partitioner)
    }

    /// Partitions an owned portfolio without cloning the offers.
    pub fn from_portfolio(
        portfolio: Portfolio,
        shards: usize,
        partitioner: &Partitioner,
    ) -> Result<Self, EngineError> {
        Self::from_offers(portfolio.into_offers(), shards, partitioner)
    }

    /// Partitions an owned offer vector without cloning the offers.
    pub fn from_offers(
        offers: Vec<FlexOffer>,
        shards: usize,
        partitioner: &Partitioner,
    ) -> Result<Self, EngineError> {
        match partitioner {
            Partitioner::HashById => Self::collect_hashed(offers, shards),
            Partitioner::GroupAware(params) => Self::group_aware(offers, shards, params),
        }
    }

    /// Builds a hash-partitioned book straight from an offer stream — the
    /// million-offer construction path: each offer goes to
    /// `splitmix64(id) % shards` as it arrives, so peak memory is the
    /// shards themselves, never one full-portfolio `Vec`
    /// (pair with [`flexoffers_workloads::city_stream`]).
    pub fn collect_hashed(
        offers: impl IntoIterator<Item = FlexOffer>,
        shards: usize,
    ) -> Result<Self, EngineError> {
        if shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let mut book = Self {
            shards: vec![Shard::default(); shards],
            owners: Vec::new(),
        };
        for (id, fo) in offers.into_iter().enumerate() {
            let s = stable_shard(id as u64, shards);
            book.owners.push((s, book.shards[s].len()));
            book.shards[s].offers.push(fo);
            book.shards[s].global.push(id);
        }
        Ok(book)
    }

    fn group_aware(
        offers: Vec<FlexOffer>,
        shards: usize,
        params: &GroupingParams,
    ) -> Result<Self, EngineError> {
        if shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        let keys: Vec<(i64, i64)> = offers
            .iter()
            .map(|fo| (fo.earliest_start(), fo.time_flexibility()))
            .collect();
        let groups = group_keys(&keys, params);

        let mut slots: Vec<Option<FlexOffer>> = offers.into_iter().map(Some).collect();
        let mut book = Self {
            shards: vec![Shard::default(); shards],
            owners: vec![(0, 0); slots.len()],
        };
        for group in groups {
            // Least-loaded shard, ties to the lowest index: deterministic
            // and balanced without ever splitting a group.
            let s = (0..shards)
                .min_by_key(|&s| book.shards[s].len())
                .expect("at least one shard");
            for g in group {
                let fo = slots[g].take().expect("groups partition the offers");
                book.owners[g] = (s, book.shards[s].len());
                book.shards[s].offers.push(fo);
                book.shards[s].global.push(g);
            }
        }
        Ok(book)
    }

    /// Number of offers across all shards.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// `true` when the book holds no offers.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in shard order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Per-shard offer counts, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::len).collect()
    }

    /// The offer at logical-portfolio position `global`.
    ///
    /// # Panics
    ///
    /// Panics if `global >= self.len()`.
    pub fn offer(&self, global: usize) -> &FlexOffer {
        let (s, local) = self.owners[global];
        &self.shards[s].offers[local]
    }

    /// The `(earliest_start, time_flexibility)` grouping keys in logical
    /// order — what the merge tier groups on without flattening the book.
    pub(crate) fn grouping_keys(&self) -> Vec<(i64, i64)> {
        let mut keys = vec![(0i64, 0i64); self.len()];
        for shard in &self.shards {
            for (fo, &g) in shard.offers.iter().zip(&shard.global) {
                keys[g] = (fo.earliest_start(), fo.time_flexibility());
            }
        }
        keys
    }

    /// The global tolerance grouping — identical to
    /// [`flexoffers_aggregation::group_indices`] over the logical
    /// portfolio, with indices in logical order.
    pub fn global_groups(&self, params: &GroupingParams) -> Vec<Vec<usize>> {
        group_keys(&self.grouping_keys(), params)
    }

    /// Reassembles the logical portfolio (clones every offer) — for tests
    /// and for callers that need the flat view back.
    pub fn to_portfolio(&self) -> Portfolio {
        (0..self.len()).map(|g| self.offer(g).clone()).collect()
    }

    /// The merge tier's scatter: per-shard worker results
    /// (`per_shard[s][i]` for `shards()[s].offers()[i]`) reassembled into
    /// logical portfolio order. One implementation for every `*_book`
    /// pipeline, so a scatter fix can never miss a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `per_shard` does not mirror the book's shard shape.
    pub(crate) fn scatter<T>(&self, per_shard: Vec<Vec<T>>) -> Vec<T> {
        let mut out: Vec<Option<T>> = (0..self.len()).map(|_| None).collect();
        for (shard, results) in self.shards.iter().zip(per_shard) {
            assert_eq!(shard.len(), results.len(), "one result per shard offer");
            for (&g, r) in shard.global.iter().zip(results) {
                out[g] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("shards partition the book"))
            .collect()
    }
}

impl Engine {
    /// [`Engine::measure_portfolio`] over a sharded book: per-shard
    /// workers run the existing per-offer row pass (each with a
    /// [`Budget`](crate::Budget) split share of this engine's threads),
    /// and the merge tier scatters the rows back to logical order and
    /// reduces them with the flat engine's own reduction — the report's
    /// summaries are **bitwise identical** to measuring the flat
    /// portfolio, for any shard count and either partitioner.
    pub fn measure_book(
        &self,
        book: &ShardedBook,
        measures: &[Box<dyn Measure>],
    ) -> PortfolioReport {
        let started = Instant::now();
        let rows = self.book_rows(book, measures);
        let summaries = reduce_measure_rows(measures, &rows);
        PortfolioReport {
            offers: book.len(),
            threads: self.budget().threads(),
            chunk_size: self.budget().chunk_size_for(book.len()),
            elapsed: started.elapsed(),
            summaries,
        }
    }

    /// [`Engine::measure_book`] over the paper's eight measures.
    pub fn measure_book_all(&self, book: &ShardedBook) -> PortfolioReport {
        self.measure_book(book, &all_measures())
    }

    /// Per-offer measure rows in logical portfolio order, computed by
    /// per-shard workers and scattered back through the owner table.
    pub(crate) fn book_rows(
        &self,
        book: &ShardedBook,
        measures: &[Box<dyn Measure>],
    ) -> Vec<Vec<Result<f64, MeasureError>>> {
        type Row = Vec<Result<f64, MeasureError>>;
        let worker = Engine::new(self.budget().per_shard(book.shard_count()));
        let per_shard: Vec<Vec<Row>> =
            parallel_map(book.shards(), self.budget().threads(), |shard| {
                worker.per_offer_rows(shard.offers(), measures)
            });
        book.scatter(per_shard)
    }

    /// [`Engine::aggregate_portfolio`] over a sharded book: groups come
    /// from the global `(tes, tf)` keys, members are gathered through the
    /// owner table (shard-local reads for a group-aware partition), and
    /// each group aggregates on a worker thread. Output order and content
    /// are identical to the flat engine and to the sequential
    /// [`flexoffers_aggregation::aggregate_portfolio`].
    pub fn aggregate_book(&self, book: &ShardedBook, params: &GroupingParams) -> Vec<Aggregate> {
        let groups = book.global_groups(params);
        self.aggregate_groups(book, &groups)
    }

    fn aggregate_groups(&self, book: &ShardedBook, groups: &[Vec<usize>]) -> Vec<Aggregate> {
        parallel_map(groups, self.budget().threads(), |indices| {
            let members: Vec<FlexOffer> = indices.iter().map(|&g| book.offer(g).clone()).collect();
            aggregate(&members).expect("grouping never yields empty groups")
        })
    }

    /// [`Engine::schedule_portfolio`] over a sharded book — the Scenario 1
    /// pipeline with globally computed groups, parallel per-group
    /// aggregation and realization, and the scheduling of the reduced
    /// problem on the merge tier. Bitwise identical to the flat pipeline
    /// (and therefore to the sequential
    /// [`flexoffers_scheduling::schedule_via_aggregation`]).
    pub fn schedule_book(
        &self,
        book: &ShardedBook,
        target: &Series<i64>,
        params: &GroupingParams,
        scheduler: &dyn Scheduler,
    ) -> Result<PipelineOutcome, SchedulingError> {
        let groups = book.global_groups(params);
        let aggregates = self.aggregate_groups(book, &groups);
        self.schedule_aggregates(&aggregates, &groups, book.len(), target, scheduler)
    }

    /// [`Engine::trade_portfolio`] over a sharded book — the Scenario 2
    /// pipeline with globally computed groups, parallel per-aggregate
    /// market evaluation, per-shard baseline summation, and the settlement
    /// fold on the merge tier in aggregate order. Bitwise identical to the
    /// flat pipeline (and therefore to the sequential
    /// [`Aggregator::run`]).
    pub fn trade_book(
        &self,
        book: &ShardedBook,
        aggregator: &Aggregator,
        market: &SpotMarket,
    ) -> TradeOutcome {
        let aggregates = self.aggregate_book(book, &aggregator.grouping);
        let decisions: Vec<LotDecision> =
            parallel_map(&aggregates, self.budget().threads(), |agg| {
                aggregator.evaluate(agg, market)
            });
        let baseline_cost = market.cost_of(&self.baseline_load_book(book));
        TradeOutcome {
            outcome: Aggregator::settle(decisions, baseline_cost, market),
            aggregates: aggregates.len(),
        }
    }

    /// The book's no-flexibility baseline load: per-shard workers sum
    /// their own offers, the merge tier folds the partials in shard
    /// order. Integer series addition is exact and order-insensitive, so
    /// this equals the flat [`Engine::baseline_load_parallel`] bit for
    /// bit under any partition.
    pub(crate) fn baseline_load_book(&self, book: &ShardedBook) -> Series<i64> {
        let worker = Engine::new(self.budget().per_shard(book.shard_count()));
        let partials = parallel_map(book.shards(), self.budget().threads(), |shard| {
            worker.baseline_load_parallel(shard.offers())
        });
        sum_series(partials.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use flexoffers_aggregation::group_indices;
    use flexoffers_model::Slice;
    use flexoffers_scheduling::{GreedyScheduler, SchedulingProblem};

    fn offers(n: usize) -> Vec<FlexOffer> {
        (0..n)
            .map(|i| {
                let tes = (i % 5) as i64;
                let window = (i % 3) as i64;
                let lo = (i % 4) as i64 - 1;
                FlexOffer::new(tes, tes + window, vec![Slice::new(lo, lo + 2).unwrap()]).unwrap()
            })
            .collect()
    }

    fn both_partitioners() -> [Partitioner; 2] {
        [
            Partitioner::HashById,
            Partitioner::GroupAware(GroupingParams::with_tolerances(2, 1)),
        ]
    }

    #[test]
    fn every_offer_lands_in_exactly_one_shard() {
        let fos = offers(23);
        for partitioner in both_partitioners() {
            for shards in [1, 2, 3, 8] {
                let book = ShardedBook::partition(&fos, shards, &partitioner).unwrap();
                assert_eq!(book.len(), fos.len());
                assert_eq!(book.shard_count(), shards);
                assert_eq!(book.shard_sizes().iter().sum::<usize>(), fos.len());
                let mut seen: Vec<usize> = book
                    .shards()
                    .iter()
                    .flat_map(|s| s.global_indices().iter().copied())
                    .collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..fos.len()).collect::<Vec<_>>(), "{partitioner:?}");
                // The owner table agrees with the shard contents.
                for (g, fo) in fos.iter().enumerate() {
                    assert_eq!(book.offer(g), fo);
                }
                assert_eq!(book.to_portfolio().as_slice(), &fos[..]);
            }
        }
    }

    #[test]
    fn group_aware_partitioning_never_splits_a_group() {
        let fos = offers(37);
        for params in [
            GroupingParams::strict(),
            GroupingParams::single_group(),
            GroupingParams::with_tolerances(2, 1),
        ] {
            let book = ShardedBook::partition(&fos, 4, &Partitioner::GroupAware(params)).unwrap();
            for group in group_indices(&fos, &params) {
                let shard_of = |g: usize| book.owners[g].0;
                let first = shard_of(group[0]);
                assert!(
                    group.iter().all(|&g| shard_of(g) == first),
                    "group {group:?} straddles shards under {params:?}"
                );
            }
        }
    }

    #[test]
    fn empty_singleton_and_single_group_portfolios_round_trip() {
        for partitioner in both_partitioners() {
            // Empty: every shard exists and is empty.
            let empty = ShardedBook::partition(&[], 3, &partitioner).unwrap();
            assert!(empty.is_empty());
            assert_eq!(empty.shard_sizes(), vec![0, 0, 0]);
            assert!(empty.to_portfolio().is_empty());

            // Singleton: exactly one shard holds the offer.
            let one = offers(1);
            let book = ShardedBook::partition(&one, 4, &partitioner).unwrap();
            assert_eq!(book.len(), 1);
            assert_eq!(book.shard_sizes().iter().sum::<usize>(), 1);
            assert_eq!(book.offer(0), &one[0]);
        }

        // All-one-group under a group-aware partition: one shard takes the
        // whole portfolio, the rest stay empty.
        let fos = offers(9);
        let book = ShardedBook::partition(
            &fos,
            3,
            &Partitioner::GroupAware(GroupingParams::single_group()),
        )
        .unwrap();
        let mut sizes = book.shard_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![0, 0, 9]);
        assert_eq!(book.to_portfolio().as_slice(), &fos[..]);
    }

    #[test]
    fn more_shards_than_offers_degrades_gracefully() {
        let fos = offers(3);
        for partitioner in both_partitioners() {
            let book = ShardedBook::partition(&fos, 16, &partitioner).unwrap();
            assert_eq!(book.shard_count(), 16);
            assert_eq!(book.len(), 3);
            assert!(book.shards().iter().filter(|s| !s.is_empty()).count() <= 3);
            // Pipelines still run — including with thread/chunk budgets far
            // beyond every shard's size (the degenerate-shard regime).
            let budget = Budget::with_threads(64)
                .unwrap()
                .with_chunk_size(4096)
                .unwrap();
            let engine = Engine::new(budget);
            let report = engine.measure_book_all(&book);
            assert_eq!(report.offers, 3);
            let flat = engine.measure_portfolio_all(&fos);
            assert_eq!(report.summaries, flat.summaries);
        }
    }

    #[test]
    fn zero_shards_is_the_documented_error_not_a_panic() {
        let fos = offers(2);
        for partitioner in both_partitioners() {
            assert_eq!(
                ShardedBook::partition(&fos, 0, &partitioner).unwrap_err(),
                EngineError::ZeroShards
            );
        }
        assert_eq!(
            ShardedBook::collect_hashed(offers(2), 0).unwrap_err(),
            EngineError::ZeroShards
        );
    }

    #[test]
    fn collect_hashed_matches_eager_hash_partition() {
        let fos = offers(19);
        let eager = ShardedBook::partition(&fos, 5, &Partitioner::HashById).unwrap();
        let streamed = ShardedBook::collect_hashed(fos, 5).unwrap();
        assert_eq!(eager, streamed);
    }

    #[test]
    fn zero_offer_shards_survive_every_pipeline_with_oversized_knobs() {
        // Regression: degenerate (empty) shards plus budgets larger than
        // any shard must not panic anywhere in the four pipelines.
        let fos = offers(4);
        let budget = Budget::with_threads(64)
            .unwrap()
            .with_chunk_size(4096)
            .unwrap();
        let engine = Engine::new(budget);
        let params = GroupingParams::with_tolerances(2, 2);
        for partitioner in [Partitioner::HashById, Partitioner::GroupAware(params)] {
            let book = ShardedBook::partition(&fos, 32, &partitioner).unwrap();
            assert!(book.shards().iter().any(Shard::is_empty));

            let flat = engine.measure_portfolio_all(&fos);
            assert_eq!(engine.measure_book_all(&book).summaries, flat.summaries);

            assert_eq!(
                engine.aggregate_book(&book, &params),
                engine.aggregate_portfolio(&fos, &params)
            );

            let target = Series::new(0, vec![4, 3, 2, 1]);
            let problem = SchedulingProblem::new(fos.clone(), target.clone());
            let sharded = engine
                .schedule_book(&book, &target, &params, &GreedyScheduler::new())
                .unwrap();
            let flat = engine
                .schedule_portfolio(&problem, &params, &GreedyScheduler::new())
                .unwrap();
            assert_eq!(sharded, flat);

            let market = SpotMarket::new(Series::new(0, vec![2.0, 5.0, 3.0, 1.5]), 2.0).unwrap();
            let aggregator = Aggregator::new(params, 2);
            let portfolio = Portfolio::from_offers(fos.clone());
            let sharded = engine.trade_book(&book, &aggregator, &market);
            let flat = engine.trade_portfolio(&portfolio, &aggregator, &market);
            assert_eq!(sharded.outcome, flat.outcome);
            assert_eq!(sharded.aggregates, flat.aggregates);
        }
    }

    #[test]
    fn hash_placement_is_stable() {
        // splitmix64 placement is part of the book's contract (committed
        // bench baselines and CI smokes rely on reproducible shards).
        let fos = offers(8);
        let book = ShardedBook::partition(&fos, 3, &Partitioner::HashById).unwrap();
        let placement: Vec<usize> = (0..fos.len()).map(|g| book.owners[g].0).collect();
        let again = ShardedBook::partition(&fos, 3, &Partitioner::HashById).unwrap();
        let placement_again: Vec<usize> = (0..fos.len()).map(|g| again.owners[g].0).collect();
        assert_eq!(placement, placement_again);
        assert!(placement.iter().all(|&s| s < 3));
    }

    #[test]
    fn partitioner_names() {
        assert_eq!(Partitioner::HashById.name(), "hash-by-id");
        assert_eq!(
            Partitioner::GroupAware(GroupingParams::strict()).name(),
            "group-aware"
        );
    }
}
