//! The batched evaluation pipeline itself.

use std::time::Instant;

use flexoffers_aggregation::{aggregate_indices, group_indices, Aggregate, GroupingParams};
use flexoffers_market::{baseline_load, Aggregator, LotDecision, SpotMarket};
use flexoffers_measures::{
    all_measures, ColumnarBatch, Measure, MeasureError, PreparedOffer, SetAggregation,
};
use flexoffers_model::{Assignment, FlexOffer, Portfolio};
use flexoffers_scheduling::{
    assemble_member_schedule, realize_aggregate, PipelineOutcome, Scheduler, SchedulingError,
    SchedulingProblem,
};
use flexoffers_timeseries::ops::sum_series;
use flexoffers_timeseries::Series;

use crate::budget::{Budget, Kernel};
use crate::chunk::{chunk_ranges, parallel_map};
use crate::report::{MeasureSummary, PortfolioReport};

/// Result of [`Engine::trade_portfolio`]: the settled market outcome plus
/// pipeline context.
#[derive(Clone, Debug, PartialEq)]
pub struct TradeOutcome {
    /// The settled market outcome — bitwise identical to the sequential
    /// [`Aggregator::run`] on the same inputs.
    pub outcome: flexoffers_market::MarketOutcome,
    /// Number of aggregates the grouping produced (admitted + rejected).
    pub aggregates: usize,
}

/// A portfolio-scale evaluator with a fixed [`Budget`].
///
/// The engine is a pure scheduler: all semantics live in the per-offer
/// primitives it drives ([`Measure::of_prepared`],
/// [`aggregate_indices`]), and every knob changes throughput only — see
/// the crate docs for the determinism guarantee.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    budget: Budget,
}

impl Engine {
    /// An engine over the given budget.
    pub fn new(budget: Budget) -> Self {
        Self { budget }
    }

    /// A single-threaded engine.
    pub fn sequential() -> Self {
        Self::new(Budget::sequential())
    }

    /// An engine sized to the host (see [`Budget::detected`]).
    pub fn detected() -> Self {
        Self::new(Budget::detected())
    }

    /// The engine's budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Evaluates `measures` over every offer and reduces to set-level
    /// values, exactly as the sequential
    /// [`Measure::of_set`] loop would — same values, same errors, same
    /// floating-point addition order — but with the per-offer work chunked
    /// across worker threads and each offer prepared once
    /// ([`PreparedOffer`]) for all measures.
    pub fn measure_portfolio(
        &self,
        offers: &[FlexOffer],
        measures: &[Box<dyn Measure>],
    ) -> PortfolioReport {
        let started = Instant::now();
        let chunk_size = self.budget.chunk_size_for(offers.len());
        let summaries = if self.use_columnar(measures) {
            // Columnar fast path: workers hand back measure-major columns
            // per chunk and each measure's fold walks the chunks in range
            // order — the same per-offer value sequence the row-major
            // reduction sees, without ever materialising a row.
            let ranges = chunk_ranges(offers.len(), chunk_size);
            let chunked: Vec<Vec<Vec<Result<f64, MeasureError>>>> =
                parallel_map(&ranges, self.budget.threads(), |range| {
                    ColumnarBatch::new().columns(&offers[range.clone()], measures)
                });
            measures
                .iter()
                .enumerate()
                .map(|(j, m)| {
                    reduce_measure_values(
                        m.as_ref(),
                        offers.len(),
                        chunked.iter().flat_map(|columns| columns[j].iter()),
                    )
                })
                .collect()
        } else {
            let rows = self.per_offer_rows(offers, measures);
            reduce_measure_rows(measures, &rows)
        };

        PortfolioReport {
            offers: offers.len(),
            threads: self.budget.threads(),
            chunk_size,
            elapsed: started.elapsed(),
            summaries,
        }
    }

    /// [`Engine::measure_portfolio`] over the paper's eight measures.
    pub fn measure_portfolio_all(&self, offers: &[FlexOffer]) -> PortfolioReport {
        self.measure_portfolio(offers, &all_measures())
    }

    /// Per-offer values of `measures` over `offers` — each offer prepared
    /// once ([`PreparedOffer`]), work chunked across workers, rows merged
    /// in portfolio order. The single prepared-evaluation hot loop behind
    /// both the measurement pass and the scenario correlations; nothing is
    /// reduced off the calling thread.
    ///
    /// Public because the serving tier caches these rows *per shard* and
    /// re-runs the pass only on shards a mutation dirtied: each row is a
    /// pure function of its offer alone (no cross-offer arithmetic), so
    /// rows computed shard-by-shard and gathered in portfolio order are
    /// bitwise the rows of one flat pass, ready for
    /// [`reduce_measure_rows`].
    pub fn per_offer_rows(
        &self,
        offers: &[FlexOffer],
        measures: &[Box<dyn Measure>],
    ) -> Vec<Vec<Result<f64, MeasureError>>> {
        let chunk_size = self.budget.chunk_size_for(offers.len());
        let ranges = chunk_ranges(offers.len(), chunk_size);
        type Row = Vec<Result<f64, MeasureError>>;
        let chunks: Vec<Vec<Row>> = if self.use_columnar(measures) {
            parallel_map(&ranges, self.budget.threads(), |range| {
                ColumnarBatch::new().rows(&offers[range.clone()], measures)
            })
        } else {
            parallel_map(&ranges, self.budget.threads(), |range| {
                offers[range.clone()]
                    .iter()
                    .map(|fo| {
                        let prepared = PreparedOffer::new(fo);
                        measures.iter().map(|m| m.of_prepared(&prepared)).collect()
                    })
                    .collect()
            })
        };
        chunks.into_iter().flatten().collect()
    }

    /// [`Engine::per_offer_rows`] evaluated through a caller-owned columnar
    /// arena. On a single-threaded columnar budget the whole slice runs as
    /// one batch inside `arena`, whose buffers survive the call — a worker
    /// that keeps its arena (the serving tier keeps one per shard) does
    /// zero steady-state kernel allocations. Any other budget delegates to
    /// [`Engine::per_offer_rows`], leaving `arena` untouched. Rows are
    /// bitwise identical either way: each row is a pure function of its
    /// offer, so batching the slice whole instead of in chunks cannot
    /// change it.
    pub fn per_offer_rows_in(
        &self,
        arena: &mut ColumnarBatch,
        offers: &[FlexOffer],
        measures: &[Box<dyn Measure>],
    ) -> Vec<Vec<Result<f64, MeasureError>>> {
        if self.budget.threads() <= 1 && self.use_columnar(measures) {
            arena.rows(offers, measures)
        } else {
            self.per_offer_rows(offers, measures)
        }
    }

    /// Whether this budget's [`Kernel`] resolves to the columnar path for
    /// the given measure set: never for [`Kernel::Scalar`], always for
    /// [`Kernel::Columnar`] (kernel-less measures fall back per offer
    /// inside the batch), and for [`Kernel::Auto`] only when the set is
    /// non-empty and every measure advertises a columnar kernel.
    fn use_columnar(&self, measures: &[Box<dyn Measure>]) -> bool {
        match self.budget.kernel() {
            Kernel::Scalar => false,
            Kernel::Columnar => true,
            Kernel::Auto => {
                !measures.is_empty() && measures.iter().all(|m| m.columnar_kernel().is_some())
            }
        }
    }

    /// Groups `offers` under `params` and start-alignment-aggregates each
    /// group, groups fanned out across worker threads. Output order (and
    /// content) is identical to the sequential
    /// [`flexoffers_aggregation::aggregate_portfolio`].
    pub fn aggregate_portfolio(
        &self,
        offers: &[FlexOffer],
        params: &GroupingParams,
    ) -> Vec<Aggregate> {
        let groups = group_indices(offers, params);
        parallel_map(&groups, self.budget.threads(), |indices| {
            aggregate_indices(offers, indices).expect("grouping never yields empty groups")
        })
    }

    /// The full Scenario 1 pipeline at portfolio scale: group with
    /// `params`, aggregate every tolerance group in parallel, schedule the
    /// (much smaller) aggregate problem with `scheduler` on the calling
    /// thread, then realize every aggregate's plan at member level in
    /// parallel — each aggregate's scheduled load is its partition of the
    /// residual target, and
    /// [`realize_aggregate`] fits members against exactly that partition
    /// when the plan proves unrealizable.
    ///
    /// The parallel units are the tolerance groups (a pure function of the
    /// portfolio, never of the budget), and the merge scatters member
    /// assignments back to input positions in group order, so the outcome
    /// is **bitwise identical** at any thread count and chunk size — and
    /// bitwise identical to the sequential
    /// [`flexoffers_scheduling::schedule_via_aggregation`].
    pub fn schedule_portfolio(
        &self,
        problem: &SchedulingProblem,
        params: &GroupingParams,
        scheduler: &dyn Scheduler,
    ) -> Result<PipelineOutcome, SchedulingError> {
        let offers = problem.offers();
        let groups = group_indices(offers, params);
        let aggregates: Vec<Aggregate> = parallel_map(&groups, self.budget.threads(), |indices| {
            aggregate_indices(offers, indices).expect("grouping never yields empty groups")
        });
        let outcome = self.schedule_aggregates(
            &aggregates,
            &groups,
            offers.len(),
            problem.target(),
            scheduler,
        )?;
        debug_assert!(problem.is_feasible(&outcome.schedule));
        Ok(outcome)
    }

    /// The back half of the Scenario 1 pipeline, starting from
    /// already-computed aggregates and their member groups: schedule the
    /// reduced problem on the calling thread, realize every aggregate's
    /// plan at member level in parallel, and scatter the member
    /// assignments back to input positions. One implementation behind
    /// [`Engine::schedule_portfolio`], the sharded
    /// [`Engine::schedule_book`](crate::shard), and the serving tier's
    /// incremental schedule query — so the pipeline's stages cannot drift
    /// between the flat, sharded, and live paths.
    pub fn schedule_aggregates(
        &self,
        aggregates: &[Aggregate],
        groups: &[Vec<usize>],
        offers_len: usize,
        target: &Series<i64>,
        scheduler: &dyn Scheduler,
    ) -> Result<PipelineOutcome, SchedulingError> {
        let reduced = SchedulingProblem::new(
            aggregates.iter().map(|a| a.flexoffer().clone()).collect(),
            target.clone(),
        );
        let aggregate_schedule = scheduler.schedule(&reduced)?;

        let planned: Vec<(&Aggregate, &Assignment)> = aggregates
            .iter()
            .zip(aggregate_schedule.assignments())
            .collect();
        let realized: Vec<(Vec<Assignment>, bool)> =
            parallel_map(&planned, self.budget.threads(), |(agg, assignment)| {
                realize_aggregate(agg, assignment)
            });

        Ok(assemble_member_schedule(offers_len, groups, realized))
    }

    /// The full Scenario 2 pipeline at portfolio scale: group and
    /// aggregate in parallel ([`Engine::aggregate_portfolio`]), evaluate
    /// every aggregate against the market in parallel
    /// ([`Aggregator::evaluate`]: admission, planning, realizability), and
    /// settle the decisions on the calling thread in aggregate order.
    ///
    /// The baseline load is summed in parallel over portfolio chunks —
    /// integer series addition is exact, so chunking cannot perturb it —
    /// and the settlement fold reproduces the sequential accumulation
    /// order, making the outcome **bitwise identical** to
    /// [`Aggregator::run`] at any thread count and chunk size.
    pub fn trade_portfolio(
        &self,
        portfolio: &Portfolio,
        aggregator: &Aggregator,
        market: &SpotMarket,
    ) -> TradeOutcome {
        let offers = portfolio.as_slice();
        let aggregates = self.aggregate_portfolio(offers, &aggregator.grouping);
        let decisions: Vec<LotDecision> = parallel_map(&aggregates, self.budget.threads(), |agg| {
            aggregator.evaluate(agg, market)
        });
        let baseline_cost = market.cost_of(&self.baseline_load_parallel(offers));
        TradeOutcome {
            outcome: Aggregator::settle(decisions, baseline_cost, market),
            aggregates: aggregates.len(),
        }
    }

    /// The portfolio's no-flexibility baseline load, chunked across
    /// workers. Partial sums are integer series, so the chunked total is
    /// exactly [`baseline_load`] over the whole slice — and exactly the
    /// fold of any other partition's partials (the serving tier caches one
    /// partial per shard and sums them on every trade query).
    pub fn baseline_load_parallel(&self, offers: &[FlexOffer]) -> Series<i64> {
        let chunk_size = self.budget.chunk_size_for(offers.len());
        let ranges = chunk_ranges(offers.len(), chunk_size);
        let partials = if self.budget.kernel() == Kernel::Scalar {
            parallel_map(&ranges, self.budget.threads(), |range| {
                baseline_load(&offers[range.clone()])
            })
        } else {
            // The baseline always has a columnar form, so Auto picks it.
            parallel_map(&ranges, self.budget.threads(), |range| {
                ColumnarBatch::new().baseline_partial(&offers[range.clone()])
            })
        };
        sum_series(partials.iter())
    }

    /// [`Engine::baseline_load_parallel`] through a caller-owned columnar
    /// arena — the baseline counterpart of [`Engine::per_offer_rows_in`],
    /// with the same single-threaded-columnar arena reuse and the same
    /// bitwise-identity guarantee (the columnar partial reproduces the
    /// scalar fold's series representation exactly).
    pub fn baseline_load_parallel_in(
        &self,
        arena: &mut ColumnarBatch,
        offers: &[FlexOffer],
    ) -> Series<i64> {
        if self.budget.threads() <= 1 && self.budget.kernel() != Kernel::Scalar {
            arena.baseline_partial(offers)
        } else {
            self.baseline_load_parallel(offers)
        }
    }
}

/// The deterministic merge behind [`Engine::measure_portfolio`] and the
/// sharded book's merge tier: rows arrive in portfolio order, and each
/// measure's reduction walks offers in that order, mirroring its
/// [`Measure::of_set`] semantics (short-circuit on the first error; sum,
/// or average for relative area). Keeping the reduction in one function is
/// what makes flat, sharded, and *incrementally cached* measurement
/// (the serving tier feeds it rows gathered from per-shard caches)
/// bitwise identical by construction.
pub fn reduce_measure_rows(
    measures: &[Box<dyn Measure>],
    rows: &[Vec<Result<f64, MeasureError>>],
) -> Vec<MeasureSummary> {
    measures
        .iter()
        .enumerate()
        .map(|(j, m)| reduce_measure_values(m.as_ref(), rows.len(), rows.iter().map(|row| &row[j])))
        .collect()
}

/// One measure's reduction over its per-offer values in portfolio order —
/// the shared fold behind [`reduce_measure_rows`] (row-major input) and
/// the engine's columnar fast path (measure-major input). `offer_count`
/// is the portfolio size the values were drawn from; the fold consumes
/// exactly one value per offer.
fn reduce_measure_values<'a>(
    m: &dyn Measure,
    offer_count: usize,
    values: impl Iterator<Item = &'a Result<f64, MeasureError>>,
) -> MeasureSummary {
    let mut total = 0.0;
    let mut first_error: Option<MeasureError> = None;
    let mut evaluated = 0usize;
    let mut failed = 0usize;
    let mut min: Option<f64> = None;
    let mut max: Option<f64> = None;
    for value in values {
        match value {
            Ok(v) => {
                evaluated += 1;
                min = Some(min.map_or(*v, |m| m.min(*v)));
                max = Some(max.map_or(*v, |m| m.max(*v)));
                if first_error.is_none() {
                    total += v;
                }
            }
            Err(e) => {
                failed += 1;
                if first_error.is_none() {
                    first_error = Some(e.clone());
                }
            }
        }
    }
    let value = match first_error {
        Some(e) => Err(e),
        None => match m.set_aggregation() {
            SetAggregation::Sum => Ok(total),
            SetAggregation::Average => {
                if offer_count == 0 {
                    Err(MeasureError::EmptySet {
                        measure: m.short_name(),
                    })
                } else {
                    Ok(total / offer_count as f64)
                }
            }
        },
    };
    MeasureSummary {
        measure: m.short_name(),
        value,
        evaluated,
        failed,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offers() -> Vec<FlexOffer> {
        vec![
            FlexOffer::new(0, 2, vec![Slice::new(1, 3).unwrap()]).unwrap(),
            FlexOffer::new(1, 5, vec![Slice::new(0, 2).unwrap()]).unwrap(),
            FlexOffer::new(2, 4, vec![Slice::new(-3, -1).unwrap()]).unwrap(),
        ]
    }

    #[test]
    fn matches_sequential_of_set_exactly() {
        let fos = offers();
        let report = Engine::new(Budget::with_threads(3).unwrap()).measure_portfolio_all(&fos);
        for (summary, m) in report.summaries.iter().zip(all_measures()) {
            assert_eq!(summary.value, m.of_set(&fos), "{}", summary.measure);
            assert_eq!(summary.evaluated + summary.failed, fos.len());
        }
    }

    #[test]
    fn empty_portfolio_reduces_like_of_set() {
        let report = Engine::sequential().measure_portfolio_all(&[]);
        assert_eq!(report.offers, 0);
        for (summary, m) in report.summaries.iter().zip(all_measures()) {
            assert_eq!(summary.value, m.of_set(&[]), "{}", summary.measure);
        }
    }

    #[test]
    fn mixed_offer_short_circuits_like_of_set() {
        // A mixed flex-offer makes the strict measures error; the engine
        // must surface the same error of_set does.
        let mut fos = offers();
        fos.push(FlexOffer::new(0, 1, vec![Slice::new(-1, 1).unwrap()]).unwrap());
        let strict: Vec<Box<dyn Measure>> = vec![Box::new(
            flexoffers_measures::AbsoluteAreaFlexibility::rejecting_mixed(),
        )];
        let report = Engine::detected().measure_portfolio(&fos, &strict);
        assert_eq!(report.summaries[0].value, strict[0].of_set(&fos));
        assert!(report.summaries[0].value.is_err());
        assert_eq!(report.summaries[0].failed, 1);
    }

    #[test]
    fn schedule_portfolio_matches_sequential_pipeline() {
        use flexoffers_scheduling::{schedule_via_aggregation, GreedyScheduler};
        let fos = offers();
        let problem = SchedulingProblem::new(fos, Series::new(0, vec![4, 4, 2, 2, 1]));
        for params in [
            GroupingParams::strict(),
            GroupingParams::single_group(),
            GroupingParams::with_tolerances(2, 2),
        ] {
            let sequential =
                schedule_via_aggregation(&problem, &params, &GreedyScheduler::new()).unwrap();
            let parallel = Engine::new(Budget::with_threads(4).unwrap())
                .schedule_portfolio(&problem, &params, &GreedyScheduler::new())
                .unwrap();
            assert_eq!(parallel, sequential);
            assert!(problem.is_feasible(&parallel.schedule));
        }
    }

    #[test]
    fn trade_portfolio_matches_sequential_aggregator() {
        use flexoffers_market::SpotMarket;
        let portfolio = Portfolio::from_offers(offers());
        let market = SpotMarket::new(Series::new(0, vec![2.0, 5.0, 3.0, 1.5, 4.0]), 2.0).unwrap();
        for params in [
            GroupingParams::strict(),
            GroupingParams::single_group(),
            GroupingParams::with_tolerances(2, 2),
        ] {
            let aggregator = Aggregator::new(params, 3);
            let sequential = aggregator.run(&portfolio, &market);
            let traded = Engine::new(Budget::with_threads(4).unwrap()).trade_portfolio(
                &portfolio,
                &aggregator,
                &market,
            );
            assert_eq!(traded.outcome, sequential);
            assert_eq!(
                traded.aggregates,
                traded.outcome.orders.len() + traded.outcome.rejected_lots
            );
        }
    }

    #[test]
    fn parallel_aggregation_matches_sequential() {
        let fos = offers();
        for params in [
            GroupingParams::strict(),
            GroupingParams::single_group(),
            GroupingParams::with_tolerances(1, 2),
        ] {
            let parallel =
                Engine::new(Budget::with_threads(4).unwrap()).aggregate_portfolio(&fos, &params);
            let sequential = flexoffers_aggregation::aggregate_portfolio(&fos, &params);
            assert_eq!(parallel, sequential);
        }
    }
}
