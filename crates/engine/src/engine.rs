//! The batched evaluation pipeline itself.

use std::time::Instant;

use flexoffers_aggregation::{aggregate_indices, group_indices, Aggregate, GroupingParams};
use flexoffers_measures::{all_measures, Measure, MeasureError, PreparedOffer, SetAggregation};
use flexoffers_model::FlexOffer;

use crate::budget::Budget;
use crate::chunk::{chunk_ranges, parallel_map};
use crate::report::{MeasureSummary, PortfolioReport};

/// A portfolio-scale evaluator with a fixed [`Budget`].
///
/// The engine is a pure scheduler: all semantics live in the per-offer
/// primitives it drives ([`Measure::of_prepared`],
/// [`aggregate_indices`]), and every knob changes throughput only — see
/// the crate docs for the determinism guarantee.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    budget: Budget,
}

impl Engine {
    /// An engine over the given budget.
    pub fn new(budget: Budget) -> Self {
        Self { budget }
    }

    /// A single-threaded engine.
    pub fn sequential() -> Self {
        Self::new(Budget::sequential())
    }

    /// An engine sized to the host (see [`Budget::detected`]).
    pub fn detected() -> Self {
        Self::new(Budget::detected())
    }

    /// The engine's budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Evaluates `measures` over every offer and reduces to set-level
    /// values, exactly as the sequential
    /// [`Measure::of_set`] loop would — same values, same errors, same
    /// floating-point addition order — but with the per-offer work chunked
    /// across worker threads and each offer prepared once
    /// ([`PreparedOffer`]) for all measures.
    pub fn measure_portfolio(
        &self,
        offers: &[FlexOffer],
        measures: &[Box<dyn Measure>],
    ) -> PortfolioReport {
        let started = Instant::now();
        let chunk_size = self.budget.chunk_size_for(offers.len());
        let ranges = chunk_ranges(offers.len(), chunk_size);

        // Workers produce per-offer rows (one value per measure); nothing
        // is reduced off the calling thread.
        type Row = Vec<Result<f64, MeasureError>>;
        let chunks: Vec<Vec<Row>> = parallel_map(&ranges, self.budget.threads(), |range| {
            offers[range.clone()]
                .iter()
                .map(|fo| {
                    let prepared = PreparedOffer::new(fo);
                    measures.iter().map(|m| m.of_prepared(&prepared)).collect()
                })
                .collect()
        });

        // Deterministic merge: chunks arrive in portfolio order, and each
        // measure's reduction walks offers in that order, mirroring its
        // `of_set` semantics (short-circuit on the first error; sum, or
        // average for relative area).
        let summaries = measures
            .iter()
            .enumerate()
            .map(|(j, m)| {
                let mut total = 0.0;
                let mut first_error: Option<MeasureError> = None;
                let mut evaluated = 0usize;
                let mut failed = 0usize;
                let mut min: Option<f64> = None;
                let mut max: Option<f64> = None;
                for row in chunks.iter().flatten() {
                    match &row[j] {
                        Ok(v) => {
                            evaluated += 1;
                            min = Some(min.map_or(*v, |m| m.min(*v)));
                            max = Some(max.map_or(*v, |m| m.max(*v)));
                            if first_error.is_none() {
                                total += v;
                            }
                        }
                        Err(e) => {
                            failed += 1;
                            if first_error.is_none() {
                                first_error = Some(e.clone());
                            }
                        }
                    }
                }
                let value = match first_error {
                    Some(e) => Err(e),
                    None => match m.set_aggregation() {
                        SetAggregation::Sum => Ok(total),
                        SetAggregation::Average => {
                            if offers.is_empty() {
                                Err(MeasureError::EmptySet {
                                    measure: m.short_name(),
                                })
                            } else {
                                Ok(total / offers.len() as f64)
                            }
                        }
                    },
                };
                MeasureSummary {
                    measure: m.short_name(),
                    value,
                    evaluated,
                    failed,
                    min,
                    max,
                }
            })
            .collect();

        PortfolioReport {
            offers: offers.len(),
            threads: self.budget.threads(),
            chunk_size,
            elapsed: started.elapsed(),
            summaries,
        }
    }

    /// [`Engine::measure_portfolio`] over the paper's eight measures.
    pub fn measure_portfolio_all(&self, offers: &[FlexOffer]) -> PortfolioReport {
        self.measure_portfolio(offers, &all_measures())
    }

    /// Groups `offers` under `params` and start-alignment-aggregates each
    /// group, groups fanned out across worker threads. Output order (and
    /// content) is identical to the sequential
    /// [`flexoffers_aggregation::aggregate_portfolio`].
    pub fn aggregate_portfolio(
        &self,
        offers: &[FlexOffer],
        params: &GroupingParams,
    ) -> Vec<Aggregate> {
        let groups = group_indices(offers, params);
        parallel_map(&groups, self.budget.threads(), |indices| {
            aggregate_indices(offers, indices).expect("grouping never yields empty groups")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::Slice;

    fn offers() -> Vec<FlexOffer> {
        vec![
            FlexOffer::new(0, 2, vec![Slice::new(1, 3).unwrap()]).unwrap(),
            FlexOffer::new(1, 5, vec![Slice::new(0, 2).unwrap()]).unwrap(),
            FlexOffer::new(2, 4, vec![Slice::new(-3, -1).unwrap()]).unwrap(),
        ]
    }

    #[test]
    fn matches_sequential_of_set_exactly() {
        let fos = offers();
        let report = Engine::new(Budget::with_threads(3).unwrap()).measure_portfolio_all(&fos);
        for (summary, m) in report.summaries.iter().zip(all_measures()) {
            assert_eq!(summary.value, m.of_set(&fos), "{}", summary.measure);
            assert_eq!(summary.evaluated + summary.failed, fos.len());
        }
    }

    #[test]
    fn empty_portfolio_reduces_like_of_set() {
        let report = Engine::sequential().measure_portfolio_all(&[]);
        assert_eq!(report.offers, 0);
        for (summary, m) in report.summaries.iter().zip(all_measures()) {
            assert_eq!(summary.value, m.of_set(&[]), "{}", summary.measure);
        }
    }

    #[test]
    fn mixed_offer_short_circuits_like_of_set() {
        // A mixed flex-offer makes the strict measures error; the engine
        // must surface the same error of_set does.
        let mut fos = offers();
        fos.push(FlexOffer::new(0, 1, vec![Slice::new(-1, 1).unwrap()]).unwrap());
        let strict: Vec<Box<dyn Measure>> = vec![Box::new(
            flexoffers_measures::AbsoluteAreaFlexibility::rejecting_mixed(),
        )];
        let report = Engine::detected().measure_portfolio(&fos, &strict);
        assert_eq!(report.summaries[0].value, strict[0].of_set(&fos));
        assert!(report.summaries[0].value.is_err());
        assert_eq!(report.summaries[0].failed, 1);
    }

    #[test]
    fn parallel_aggregation_matches_sequential() {
        let fos = offers();
        for params in [
            GroupingParams::strict(),
            GroupingParams::single_group(),
            GroupingParams::with_tolerances(1, 2),
        ] {
            let parallel =
                Engine::new(Budget::with_threads(4).unwrap()).aggregate_portfolio(&fos, &params);
            let sequential = flexoffers_aggregation::aggregate_portfolio(&fos, &params);
            assert_eq!(parallel, sequential);
        }
    }
}
