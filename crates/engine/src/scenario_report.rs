//! What a scenario simulation produced: imbalance or settlement numbers,
//! per-measure correlations, and text/JSON rendering.
//!
//! The JSON mirror deliberately excludes the wall-clock fields (`threads`,
//! `elapsed`): everything it contains is a pure function of the
//! [`Scenario`](crate::Scenario), so `--json` output is byte-identical
//! across thread counts — the property CI's determinism smoke diffs.

use std::time::Duration;

use flexoffers_scheduling::Imbalance;
use serde::Serialize;

use crate::scenario::ScenarioKind;

/// One measure's correlation with the scenario's realized outcome
/// (start shift for Scenario 1, per-aggregate savings for Scenario 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrelationSummary {
    /// The measure's Table 1 column name.
    pub measure: &'static str,
    /// Pearson correlation; `None` when the sample is degenerate.
    pub r: Option<f64>,
    /// Samples the measure evaluated successfully on.
    pub evaluated: usize,
}

/// Scenario 1 outcome: imbalance against the target before (earliest-start
/// baseline) and after the aggregate-then-schedule pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleSummary {
    /// The scheduler that drove the aggregate problem.
    pub scheduler: &'static str,
    /// Aggregates whose plan had to be re-fitted at member level.
    pub unrealizable_plans: usize,
    /// Imbalance of the no-flexibility baseline schedule.
    pub imbalance_before: Imbalance,
    /// Imbalance of the engine's schedule.
    pub imbalance_after: Imbalance,
}

impl ScheduleSummary {
    /// Fraction of the baseline L1 imbalance the schedule removed
    /// (0 when the baseline is already 0).
    pub fn improvement_l1(&self) -> f64 {
        if self.imbalance_before.l1 == 0.0 {
            0.0
        } else {
            1.0 - self.imbalance_after.l1 / self.imbalance_before.l1
        }
    }
}

/// Scenario 2 outcome: the settled market run, flattened for reporting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MarketSummary {
    /// Admitted orders.
    pub orders: usize,
    /// Aggregates refused by the minimum-lot rule.
    pub rejected_lots: usize,
    /// Spot cost of all admitted plans.
    pub procurement_cost: f64,
    /// Penalty paid on unrealizable-plan imbalances.
    pub imbalance_cost: f64,
    /// Penalty-rate cost of rejected lots' baseline energy.
    pub rejected_cost: f64,
    /// Cost of the whole portfolio under the no-flexibility baseline.
    pub baseline_cost: f64,
    /// Baseline cost minus the flexible pipeline's total cost.
    pub savings: f64,
    /// Savings as a fraction of the baseline.
    pub relative_savings: f64,
}

/// The result of one scenario simulation.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Which scenario ran.
    pub scenario: ScenarioKind,
    /// The scenario's seed.
    pub seed: u64,
    /// City size the portfolio was generated from.
    pub households: usize,
    /// Portfolio size.
    pub offers: usize,
    /// Aggregates the grouping produced.
    pub aggregates: usize,
    /// Worker threads the run used (wall-clock context, not part of the
    /// JSON mirror).
    pub threads: usize,
    /// Wall-clock duration (not part of the JSON mirror).
    pub elapsed: Duration,
    /// Scenario 1 outcome, when `scenario` is schedule.
    pub schedule: Option<ScheduleSummary>,
    /// Scenario 2 outcome, when `scenario` is market.
    pub market: Option<MarketSummary>,
    /// Per-measure correlation with the scenario's realized outcome.
    pub correlations: Vec<CorrelationSummary>,
}

impl ScenarioReport {
    /// Renders the report as aligned text (includes the wall-clock
    /// context the JSON mirror omits).
    pub fn render(&self) -> String {
        let mut out = format!(
            "scenario: {} · seed {} · {} households · {} offers · {} aggregates · {} thread(s) · {:.1} ms\n",
            self.scenario,
            self.seed,
            self.households,
            self.offers,
            self.aggregates,
            self.threads,
            self.elapsed.as_secs_f64() * 1e3,
        );
        if let Some(s) = &self.schedule {
            out.push_str(&format!(
                "scheduler: {} · unrealizable plans: {}\n",
                s.scheduler, s.unrealizable_plans
            ));
            out.push_str(&format!(
                "{:<10} {:>14} {:>14} {:>12}\n",
                "imbalance", "L1", "L2", "peak"
            ));
            out.push_str(&format!(
                "{:<10} {:>14.1} {:>14.1} {:>12.1}\n",
                "  before", s.imbalance_before.l1, s.imbalance_before.l2, s.imbalance_before.peak
            ));
            out.push_str(&format!(
                "{:<10} {:>14.1} {:>14.1} {:>12.1}\n",
                "  after", s.imbalance_after.l1, s.imbalance_after.l2, s.imbalance_after.peak
            ));
            out.push_str(&format!(
                "improvement (L1): {:.1}%\n",
                s.improvement_l1() * 100.0
            ));
            out.push_str("correlation of per-offer measure value with realized start shift:\n");
        }
        if let Some(m) = &self.market {
            out.push_str(&format!(
                "orders: {} · rejected lots: {}\n",
                m.orders, m.rejected_lots
            ));
            out.push_str(&format!(
                "baseline cost {:.0} · flexible total {:.0} · savings {:.0} ({:.1}%)\n",
                m.baseline_cost,
                m.procurement_cost + m.imbalance_cost + m.rejected_cost,
                m.savings,
                m.relative_savings * 100.0
            ));
            out.push_str(&format!(
                "procurement {:.0} · imbalance {:.0} · rejected {:.0}\n",
                m.procurement_cost, m.imbalance_cost, m.rejected_cost
            ));
            out.push_str("correlation of per-aggregate measure value with realized savings:\n");
        }
        for c in &self.correlations {
            match c.r {
                Some(r) => out.push_str(&format!(
                    "  {:<14} {:>8.3}  ({} samples)\n",
                    c.measure, r, c.evaluated
                )),
                None => out.push_str(&format!(
                    "  {:<14} {:>8}  ({} samples)\n",
                    c.measure, "n/a", c.evaluated
                )),
            }
        }
        out
    }

    /// A serialisable mirror of the report containing only the
    /// deterministic fields — no threads, no timing — so equal scenarios
    /// serialise to equal bytes at any budget.
    pub fn json(&self) -> ScenarioReportJson {
        ScenarioReportJson {
            scenario: self.scenario.name(),
            seed: self.seed,
            households: self.households,
            offers: self.offers,
            aggregates: self.aggregates,
            schedule: self.schedule.as_ref().map(|s| ScheduleJson {
                scheduler: s.scheduler,
                unrealizable_plans: s.unrealizable_plans,
                imbalance_before: s.imbalance_before,
                imbalance_after: s.imbalance_after,
                improvement_l1: s.improvement_l1(),
            }),
            market: self.market.as_ref().map(|m| MarketJson {
                orders: m.orders,
                rejected_lots: m.rejected_lots,
                procurement_cost: m.procurement_cost,
                imbalance_cost: m.imbalance_cost,
                rejected_cost: m.rejected_cost,
                baseline_cost: m.baseline_cost,
                savings: m.savings,
                relative_savings: m.relative_savings,
            }),
            correlations: self
                .correlations
                .iter()
                .map(|c| CorrelationJson {
                    measure: c.measure,
                    r: c.r,
                    evaluated: c.evaluated,
                })
                .collect(),
        }
    }
}

/// Serialisable mirror of [`ScenarioReport`] (deterministic fields only).
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioReportJson {
    /// Scenario name (`schedule` / `market`).
    pub scenario: &'static str,
    /// The scenario's seed.
    pub seed: u64,
    /// City size.
    pub households: usize,
    /// Portfolio size.
    pub offers: usize,
    /// Aggregates the grouping produced.
    pub aggregates: usize,
    /// Scenario 1 outcome, when present.
    pub schedule: Option<ScheduleJson>,
    /// Scenario 2 outcome, when present.
    pub market: Option<MarketJson>,
    /// Per-measure correlations.
    pub correlations: Vec<CorrelationJson>,
}

/// Serialisable mirror of [`ScheduleSummary`].
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ScheduleJson {
    /// The scheduler that drove the aggregate problem.
    pub scheduler: &'static str,
    /// Aggregates re-fitted at member level.
    pub unrealizable_plans: usize,
    /// Baseline imbalance.
    pub imbalance_before: Imbalance,
    /// Scheduled imbalance.
    pub imbalance_after: Imbalance,
    /// Fraction of baseline L1 imbalance removed.
    pub improvement_l1: f64,
}

/// Serialisable mirror of [`MarketSummary`].
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MarketJson {
    /// Admitted orders.
    pub orders: usize,
    /// Rejected lots.
    pub rejected_lots: usize,
    /// Spot cost of admitted plans.
    pub procurement_cost: f64,
    /// Imbalance penalties.
    pub imbalance_cost: f64,
    /// Rejected lots' penalty cost.
    pub rejected_cost: f64,
    /// No-flexibility baseline cost.
    pub baseline_cost: f64,
    /// Baseline minus flexible total.
    pub savings: f64,
    /// Savings relative to baseline.
    pub relative_savings: f64,
}

/// Serialisable mirror of [`CorrelationSummary`].
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CorrelationJson {
    /// The measure's Table 1 column name.
    pub measure: &'static str,
    /// Pearson correlation, when defined.
    pub r: Option<f64>,
    /// Samples evaluated.
    pub evaluated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schedule() -> ScenarioReport {
        ScenarioReport {
            scenario: ScenarioKind::Schedule,
            seed: 7,
            households: 10,
            offers: 34,
            aggregates: 5,
            threads: 4,
            elapsed: Duration::from_millis(12),
            schedule: Some(ScheduleSummary {
                scheduler: "greedy",
                unrealizable_plans: 1,
                imbalance_before: Imbalance {
                    l1: 100.0,
                    l2: 40.0,
                    peak: 9.0,
                },
                imbalance_after: Imbalance {
                    l1: 25.0,
                    l2: 10.0,
                    peak: 3.0,
                },
            }),
            market: None,
            correlations: vec![CorrelationSummary {
                measure: "Time",
                r: Some(0.5),
                evaluated: 34,
            }],
        }
    }

    #[test]
    fn render_covers_schedule_fields() {
        let text = sample_schedule().render();
        assert!(text.contains("scenario: schedule"));
        assert!(text.contains("unrealizable plans: 1"));
        assert!(text.contains("improvement (L1): 75.0%"));
        assert!(text.contains("Time"));
    }

    #[test]
    fn render_covers_market_fields() {
        let report = ScenarioReport {
            scenario: ScenarioKind::Market,
            schedule: None,
            market: Some(MarketSummary {
                orders: 3,
                rejected_lots: 2,
                procurement_cost: 90.0,
                imbalance_cost: 5.0,
                rejected_cost: 5.0,
                baseline_cost: 150.0,
                savings: 50.0,
                relative_savings: 1.0 / 3.0,
            }),
            correlations: vec![CorrelationSummary {
                measure: "Energy",
                r: None,
                evaluated: 0,
            }],
            ..sample_schedule()
        };
        let text = report.render();
        assert!(text.contains("scenario: market"));
        assert!(text.contains("rejected lots: 2"));
        assert!(text.contains("savings 50"));
        assert!(text.contains("n/a"));
    }

    #[test]
    fn json_mirror_excludes_wall_clock_fields() {
        let json = serde_json::to_string(&sample_schedule().json()).unwrap();
        assert!(json.contains("\"scenario\":\"schedule\""));
        assert!(json.contains("\"improvement_l1\""));
        assert!(json.contains("\"market\":null"));
        assert!(!json.contains("threads"));
        assert!(!json.contains("elapsed"));
    }

    #[test]
    fn improvement_of_zero_baseline_is_zero() {
        let mut s = sample_schedule().schedule.unwrap();
        s.imbalance_before = Imbalance {
            l1: 0.0,
            l2: 0.0,
            peak: 0.0,
        };
        assert_eq!(s.improvement_l1(), 0.0);
    }
}
