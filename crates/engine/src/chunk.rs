//! Deterministic fan-out primitives — the one place in the workspace that
//! spawns worker threads.
//!
//! [`parallel_map`] preserves input order in its output no matter how the
//! scheduler interleaves workers, which is what makes every consumer
//! (the engine's measurement pass, parallel aggregation, the experiment
//! sweeps in `crates/bench`) bitwise reproducible across thread counts.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Splits `0..len` into contiguous ranges of at most `chunk_size`, in
/// order; the final range may be shorter. Empty input yields no ranges.
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
pub fn chunk_ranges(len: usize, chunk_size: usize) -> Vec<Range<usize>> {
    assert!(chunk_size > 0, "chunk size must be at least 1");
    (0..len)
        .step_by(chunk_size)
        .map(|start| start..(start + chunk_size).min(len))
        .collect()
}

/// Applies `f` to every item on up to `threads` scoped worker threads and
/// returns the results **in input order**.
///
/// Workers claim items through a shared atomic cursor (cheap dynamic load
/// balancing for unevenly sized work), but each result is tagged with its
/// input index and the output is reassembled by index — scheduling can
/// never reorder or change the output. With one thread (or at most one
/// item) no threads are spawned at all; the closure runs inline.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly_once_in_order() {
        assert_eq!(chunk_ranges(0, 3), vec![]);
        assert_eq!(chunk_ranges(5, 2), vec![0..2, 2..4, 4..5]);
        assert_eq!(chunk_ranges(6, 2), vec![0..2, 2..4, 4..6]);
        assert_eq!(chunk_ranges(2, 10), vec![0..2]);
        let flattened: Vec<usize> = chunk_ranges(97, 8).into_iter().flatten().collect();
        assert_eq!(flattened, (0..97).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "chunk size must be at least 1")]
    fn zero_chunk_size_panics() {
        chunk_ranges(3, 0);
    }

    #[test]
    fn output_order_matches_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 7, 16] {
            // Skew the per-item cost so workers finish out of order.
            let out = parallel_map(&items, threads, |&x| {
                if x % 13 == 0 {
                    std::thread::yield_now();
                }
                x * x
            });
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41], 8, |&x| x + 1), vec![42]);
    }

    #[test]
    #[should_panic(expected = "parallel_map worker panicked")]
    fn worker_panics_propagate() {
        parallel_map(&[1, 2, 3], 2, |&x| {
            assert!(x < 3, "boom");
            x
        });
    }
}
