//! The engine's resource knob: how many worker threads, how big a chunk.

use std::error::Error;
use std::fmt;

/// Errors constructing an engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A thread count of zero was requested; the engine always needs at
    /// least the calling thread.
    ZeroThreads,
    /// A chunk size of zero was requested; chunks must hold at least one
    /// offer.
    ZeroChunkSize,
    /// A shard count of zero was requested; a sharded book always needs at
    /// least one shard. (Without this guard the hash partitioner's
    /// `id % shards` would panic with a divide-by-zero.)
    ZeroShards,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ZeroThreads => write!(f, "thread count must be at least 1"),
            EngineError::ZeroChunkSize => write!(f, "chunk size must be at least 1"),
            EngineError::ZeroShards => write!(f, "shard count must be at least 1"),
        }
    }
}

impl Error for EngineError {}

/// Which measure/baseline kernel implementation the engine runs.
///
/// Like every other budget knob this selects *how* the work runs, never
/// what it computes: the columnar kernels are bitwise identical to the
/// scalar path (the measures crate's contract, pinned by the engine's
/// proptests), so the knob is purely a throughput/compatibility switch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Kernel {
    /// The row-oriented per-offer loop: one
    /// [`PreparedOffer`](flexoffers_measures::PreparedOffer) per offer, all
    /// measures evaluated against it.
    Scalar,
    /// The struct-of-arrays batch kernels
    /// ([`flexoffers_measures::columnar`]): each chunk is flattened into
    /// columns once and every measure runs as one pass over a column.
    /// Measures without a columnar form fall back to the scalar path
    /// per offer inside the batch.
    Columnar,
    /// Pick per call: columnar when every requested measure advertises a
    /// columnar kernel (the baseline always does), scalar otherwise — so
    /// mixed measure sets never pay for a batch load that mostly falls
    /// back.
    #[default]
    Auto,
}

impl Kernel {
    /// Parses the CLI spelling (`"scalar"`, `"columnar"`, `"auto"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(Kernel::Scalar),
            "columnar" => Some(Kernel::Columnar),
            "auto" => Some(Kernel::Auto),
            _ => None,
        }
    }

    /// The stable CLI/report spelling.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Columnar => "columnar",
            Kernel::Auto => "auto",
        }
    }
}

/// A worker budget: thread count, an optional explicit chunk size, and the
/// kernel selector.
///
/// The chunk size is the number of offers a worker claims at a time. Left
/// unset, [`Budget::chunk_size_for`] derives one that yields roughly four
/// chunks per thread — small enough to balance uneven per-offer cost,
/// large enough to amortise dispatch. No knob affects results, only
/// throughput; the engine's merge order is deterministic regardless, and
/// the [`Kernel`] paths are bitwise identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    threads: usize,
    chunk_size: Option<usize>,
    kernel: Kernel,
}

impl Budget {
    /// A single-threaded budget: everything runs on the calling thread.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            chunk_size: None,
            kernel: Kernel::Auto,
        }
    }

    /// A budget with an explicit thread count.
    pub fn with_threads(threads: usize) -> Result<Self, EngineError> {
        if threads == 0 {
            return Err(EngineError::ZeroThreads);
        }
        Ok(Self {
            threads,
            chunk_size: None,
            kernel: Kernel::Auto,
        })
    }

    /// A budget sized to the host:
    /// [`std::thread::available_parallelism`] threads (1 when detection
    /// fails).
    pub fn detected() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk_size: None,
            kernel: Kernel::Auto,
        }
    }

    /// Pins the chunk size instead of deriving it from the portfolio.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Result<Self, EngineError> {
        if chunk_size == 0 {
            return Err(EngineError::ZeroChunkSize);
        }
        self.chunk_size = Some(chunk_size);
        Ok(self)
    }

    /// Selects the measure/baseline kernel ([`Kernel::Auto`] by default).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The selected measure/baseline kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The explicitly pinned chunk size, if any.
    pub fn explicit_chunk_size(&self) -> Option<usize> {
        self.chunk_size
    }

    /// The chunk size used for a portfolio of `len` offers: the pinned one,
    /// or `ceil(len / (4 * threads))`, at least 1. The multiplication
    /// saturates so absurd thread counts degrade to chunk size 1 instead
    /// of overflowing.
    pub fn chunk_size_for(&self, len: usize) -> usize {
        match self.chunk_size {
            Some(c) => c,
            None => len.div_ceil(4usize.saturating_mul(self.threads)).max(1),
        }
    }

    /// The per-shard worker budget when this budget is split across
    /// `shards` shard workers: `threads / shards` threads each, floored at
    /// one, with any pinned chunk size preserved. Floors matter: a naive
    /// `threads / shards` is zero whenever the shard count exceeds the
    /// thread budget (the degenerate-shard regime), and a zero-thread
    /// budget is a constructor error — every knob combination must degrade
    /// to a sequential worker instead. Public so the serving tier's live
    /// book splits its budget exactly the way [`ShardedBook`]'s pipelines
    /// do.
    ///
    /// [`ShardedBook`]: crate::ShardedBook
    pub fn per_shard(&self, shards: usize) -> Budget {
        Budget {
            threads: (self.threads / shards.max(1)).max(1),
            chunk_size: self.chunk_size,
            kernel: self.kernel,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::detected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_knobs_are_rejected() {
        assert_eq!(Budget::with_threads(0), Err(EngineError::ZeroThreads));
        assert_eq!(
            Budget::sequential().with_chunk_size(0),
            Err(EngineError::ZeroChunkSize)
        );
    }

    #[test]
    fn derived_chunk_size_targets_four_chunks_per_thread() {
        let b = Budget::with_threads(4).unwrap();
        assert_eq!(b.chunk_size_for(16_000), 1000);
        assert_eq!(b.chunk_size_for(0), 1);
        assert_eq!(b.chunk_size_for(3), 1);
        let pinned = b.with_chunk_size(7).unwrap();
        assert_eq!(pinned.chunk_size_for(16_000), 7);
    }

    #[test]
    fn absurd_thread_counts_do_not_overflow_chunk_math() {
        let b = Budget::with_threads(usize::MAX).unwrap();
        assert_eq!(b.chunk_size_for(100), 1);
        assert_eq!(b.chunk_size_for(0), 1);
    }

    #[test]
    fn detected_has_at_least_one_thread() {
        assert!(Budget::detected().threads() >= 1);
        assert!(Budget::default().threads() >= 1);
    }

    #[test]
    fn errors_render() {
        assert!(EngineError::ZeroThreads.to_string().contains("at least 1"));
        assert!(EngineError::ZeroChunkSize
            .to_string()
            .contains("at least 1"));
        assert!(EngineError::ZeroShards
            .to_string()
            .contains("shard count must be at least 1"));
    }

    #[test]
    fn kernel_knob_defaults_to_auto_and_round_trips() {
        assert_eq!(Budget::sequential().kernel(), Kernel::Auto);
        assert_eq!(Budget::detected().kernel(), Kernel::Auto);
        let b = Budget::with_threads(2)
            .unwrap()
            .with_kernel(Kernel::Columnar);
        assert_eq!(b.kernel(), Kernel::Columnar);
        for k in [Kernel::Scalar, Kernel::Columnar, Kernel::Auto] {
            assert_eq!(Kernel::parse(k.label()), Some(k));
        }
        assert_eq!(Kernel::parse("vectorised"), None);
    }

    #[test]
    fn per_shard_budget_preserves_the_kernel() {
        let b = Budget::with_threads(8).unwrap().with_kernel(Kernel::Scalar);
        assert_eq!(b.per_shard(4).kernel(), Kernel::Scalar);
    }

    #[test]
    fn per_shard_budget_never_hits_zero_threads() {
        let b = Budget::with_threads(8).unwrap().with_chunk_size(5).unwrap();
        assert_eq!(b.per_shard(2).threads(), 4);
        assert_eq!(b.per_shard(2).explicit_chunk_size(), Some(5));
        // More shards than threads: each worker degrades to sequential
        // instead of panicking in the Budget constructor.
        assert_eq!(b.per_shard(64).threads(), 1);
        assert_eq!(b.per_shard(0).threads(), 8);
        assert_eq!(Budget::sequential().per_shard(4).threads(), 1);
    }
}
