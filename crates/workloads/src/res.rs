//! Synthetic renewable production traces — the scheduling target of the E2
//! experiment (demand should follow supply).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flexoffers_timeseries::Series;

use crate::SLOTS_PER_DAY;

/// Configuration for a combined solar + wind production trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResTraceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of days.
    pub days: usize,
    /// Solar fleet peak production per slot (energy units).
    pub solar_capacity: i64,
    /// Wind fleet capacity per slot (energy units).
    pub wind_capacity: i64,
}

impl Default for ResTraceConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            days: 1,
            solar_capacity: 60,
            wind_capacity: 80,
        }
    }
}

/// Generates a non-negative production trace: a diurnal solar bell (hours
/// 6–18, scaled by a per-day cloud factor) plus AR(1) wind. The trace is
/// *positive* (production magnitude) so it can serve directly as the target
/// consumption profile for positive flex-offers.
pub fn res_production_trace(cfg: &ResTraceConfig) -> Series<i64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut values = Vec::with_capacity(cfg.days * SLOTS_PER_DAY as usize);
    let mut wind_level = rng.gen_range(0.2..=0.8) * cfg.wind_capacity as f64;
    for _ in 0..cfg.days {
        let cloud = rng.gen_range(0.5..=1.0);
        for hour in 0..SLOTS_PER_DAY {
            let solar = if (6..18).contains(&hour) {
                let phase = (hour - 6) as f64 / 12.0 * std::f64::consts::PI;
                cfg.solar_capacity as f64 * phase.sin() * cloud
            } else {
                0.0
            };
            let shock = rng.gen_range(-0.25..=0.25) * cfg.wind_capacity as f64;
            wind_level = (0.85 * wind_level + shock).clamp(0.0, cfg.wind_capacity as f64);
            values.push((solar + wind_level).round() as i64);
        }
    }
    Series::new(0, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_length_and_nonnegativity() {
        let cfg = ResTraceConfig {
            days: 3,
            ..ResTraceConfig::default()
        };
        let trace = res_production_trace(&cfg);
        assert_eq!(trace.len(), 3 * SLOTS_PER_DAY as usize);
        assert!(trace.iter().all(|(_, v)| v >= 0));
        assert_eq!(trace.start(), 0);
    }

    #[test]
    fn nights_are_wind_only() {
        let cfg = ResTraceConfig {
            wind_capacity: 0,
            ..ResTraceConfig::default()
        };
        let trace = res_production_trace(&cfg);
        for hour in 0..6 {
            assert_eq!(trace.at(hour), 0, "no solar before sunrise");
        }
        for hour in 18..24 {
            assert_eq!(trace.at(hour), 0, "no solar after sunset");
        }
        // Midday produces.
        assert!(trace.at(12) > 0 || trace.at(11) > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ResTraceConfig::default();
        assert_eq!(res_production_trace(&cfg), res_production_trace(&cfg));
        let other = ResTraceConfig {
            seed: 43,
            ..ResTraceConfig::default()
        };
        assert_ne!(res_production_trace(&cfg), res_production_trace(&other));
    }

    #[test]
    fn capacity_bounds_respected() {
        let cfg = ResTraceConfig::default();
        let trace = res_production_trace(&cfg);
        let max = cfg.solar_capacity + cfg.wind_capacity;
        assert!(trace.iter().all(|(_, v)| v <= max));
    }
}
