//! Electric-vehicle charging — the paper's running use case.

use rand::{Rng, RngCore};

use flexoffers_model::{FlexOffer, Slice};

use crate::device::{DeviceKind, DeviceModel};
use crate::SLOTS_PER_DAY;

/// An EV charger model.
///
/// Mirrors the introduction's story: the car is plugged in during the
/// evening, must be charged by a morning deadline, needs a few hours of
/// charging, and its owner is satisfied with a partial charge (the paper's
/// 60 %) — yielding flexibility in both start time and total energy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvCharger {
    /// Earliest plug-in hour of day (inclusive), e.g. 21.
    pub plug_in_from: i64,
    /// Latest plug-in hour of day (inclusive); may exceed 23 to spill past
    /// midnight.
    pub plug_in_to: i64,
    /// Departure hour *next* day, e.g. 6 — charging must finish by then.
    pub departure: i64,
    /// Charging duration range in slots, e.g. 2..=4.
    pub duration_min: usize,
    /// Maximum charging duration in slots.
    pub duration_max: usize,
    /// Maximum charge per slot (energy units).
    pub per_slot_max: i64,
    /// Fraction of a full charge the owner requires at minimum (the paper's
    /// 0.6).
    pub min_charge_fraction: f64,
}

impl Default for EvCharger {
    fn default() -> Self {
        Self {
            plug_in_from: 21,
            plug_in_to: 24,
            departure: 6,
            duration_min: 2,
            duration_max: 4,
            per_slot_max: 10,
            min_charge_fraction: 0.6,
        }
    }
}

impl EvCharger {
    /// The introduction's exact use case: plugged in at 23:00, 3 hours of
    /// charging, done by 6:00, 60 % minimum charge. Deterministic.
    pub fn paper_use_case() -> FlexOffer {
        // Slot 23 = 23:00 of day 0; departure slot 30 = 6:00 of day 1;
        // 3 slices of up to 10 units; latest start 30 - 3 = 27 (3:00, "it
        // should start being charged at 3:00 the latest"); total within
        // 60-100 % of the 30-unit full charge.
        FlexOffer::with_totals(
            23,
            27,
            vec![Slice::new(0, 10).expect("static range"); 3],
            18,
            30,
        )
        .expect("the paper's use case is well-formed")
    }
}

impl DeviceModel for EvCharger {
    fn kind(&self) -> DeviceKind {
        DeviceKind::ElectricVehicle
    }

    fn generate(&self, day: i64, rng: &mut dyn RngCore) -> FlexOffer {
        let origin = day * SLOTS_PER_DAY;
        let plug_in = origin + rng.gen_range(self.plug_in_from..=self.plug_in_to);
        let duration = rng.gen_range(self.duration_min..=self.duration_max);
        let deadline = origin + SLOTS_PER_DAY + self.departure;
        // Latest start leaves room for the full charge before departure,
        // and never precedes the plug-in time.
        let latest = (deadline - duration as i64).max(plug_in);
        let full = self.per_slot_max * duration as i64;
        let min_charge = (full as f64 * self.min_charge_fraction).ceil() as i64;
        FlexOffer::with_totals(
            plug_in,
            latest,
            vec![Slice::new(0, self.per_slot_max).expect("per-slot range"); duration],
            min_charge,
            full,
        )
        .expect("EV parameters produce well-formed flex-offers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_use_case_matches_the_story() {
        let f = EvCharger::paper_use_case();
        assert_eq!(f.earliest_start(), 23); // 23:00
        assert_eq!(f.latest_start(), 27); // 3:00
        assert_eq!(f.slice_count(), 3); // 3 hours
        assert_eq!(f.time_flexibility(), 4);
        assert_eq!(f.total_min(), 18); // 60 %
        assert_eq!(f.total_max(), 30); // 100 %
        assert_eq!(f.sign(), flexoffers_model::SignClass::Positive);
    }

    #[test]
    fn generated_offers_are_consumption_with_both_flexibilities() {
        let model = EvCharger::default();
        let mut rng = StdRng::seed_from_u64(5);
        for day in 0..20 {
            let f = model.generate(day, &mut rng);
            assert_eq!(f.sign(), flexoffers_model::SignClass::Positive);
            assert!(f.time_flexibility() > 0, "EVs keep start flexibility");
            assert!(f.energy_flexibility() > 0, "the charge band is flexible");
            // Charging finishes by departure.
            assert!(f.latest_end() <= (day + 1) * SLOTS_PER_DAY + model.departure);
            // Plug-in inside the evening window.
            let hour = f.earliest_start() - day * SLOTS_PER_DAY;
            assert!((model.plug_in_from..=model.plug_in_to).contains(&hour));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let model = EvCharger::default();
        let a = model.generate(0, &mut StdRng::seed_from_u64(9));
        let b = model.generate(0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn day_offsets_shift_the_window() {
        let model = EvCharger::default();
        let f = model.generate(3, &mut StdRng::seed_from_u64(1));
        assert!(f.earliest_start() >= 3 * SLOTS_PER_DAY);
    }
}
