//! Vehicle-to-grid workloads: the paper's example of a *mixed* flex-offer.

use rand::{Rng, RngCore};

use flexoffers_model::{FlexOffer, Slice};

use crate::device::{DeviceKind, DeviceModel};
use crate::SLOTS_PER_DAY;

/// A vehicle-to-grid battery: can discharge into the grid during the
/// evening peak and must recharge before morning. Each slot can go either
/// way within the inverter's limits, making every slice range cross zero —
/// the paper's "mixed flex-offer" (Section 2) that defeats the area-based
/// measures (Section 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VehicleToGrid {
    /// Earliest plug-in hour of day.
    pub plug_in_from: i64,
    /// Latest plug-in hour of day.
    pub plug_in_to: i64,
    /// Session length range in slots.
    pub session_min: usize,
    /// Maximum session length in slots.
    pub session_max: usize,
    /// Inverter limit per slot (energy units, both directions).
    pub inverter_limit: i64,
    /// Net energy the battery must end up having gained, at minimum.
    pub net_charge_min: i64,
}

impl Default for VehicleToGrid {
    fn default() -> Self {
        Self {
            plug_in_from: 18,
            plug_in_to: 22,
            session_min: 4,
            session_max: 8,
            inverter_limit: 6,
            net_charge_min: 4,
        }
    }
}

impl DeviceModel for VehicleToGrid {
    fn kind(&self) -> DeviceKind {
        DeviceKind::VehicleToGrid
    }

    fn generate(&self, day: i64, rng: &mut dyn RngCore) -> FlexOffer {
        let origin = day * SLOTS_PER_DAY;
        let plug_in = origin + rng.gen_range(self.plug_in_from..=self.plug_in_to);
        let session = rng.gen_range(self.session_min..=self.session_max);
        let latest = plug_in + rng.gen_range(0..=2);
        let slices = vec![
            Slice::new(-self.inverter_limit, self.inverter_limit)
                .expect("inverter limits ordered");
            session
        ];
        let profile_max = self.inverter_limit * session as i64;
        // The car must leave with at least `net_charge_min` more energy
        // than it arrived with, but never more than a full-rate charge.
        let net_min = self.net_charge_min.min(profile_max);
        FlexOffer::with_totals(plug_in, latest, slices, net_min, profile_max)
            .expect("V2G parameters produce well-formed flex-offers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sessions_are_mixed_flex_offers() {
        let model = VehicleToGrid::default();
        let mut rng = StdRng::seed_from_u64(17);
        for day in 0..10 {
            let f = model.generate(day, &mut rng);
            assert_eq!(f.sign(), flexoffers_model::SignClass::Mixed);
            assert!(f.energy_flexibility() > 0);
        }
    }

    #[test]
    fn net_charge_floor_enforced() {
        let model = VehicleToGrid::default();
        let f = model.generate(0, &mut StdRng::seed_from_u64(4));
        assert!(f.total_min() >= model.net_charge_min.min(f.profile_max()));
        // Every valid assignment nets at least the floor.
        let mut rng = StdRng::seed_from_u64(5);
        for a in f.sample_assignments(50, &mut rng) {
            assert!(a.total() >= f.total_min());
        }
    }

    #[test]
    fn area_measures_reject_v2g_under_strict_policy() {
        // The workload exists to show why Section 4 excludes mixed
        // flex-offers from the area measures.
        use flexoffers_measures::{AbsoluteAreaFlexibility, Measure};
        let f = VehicleToGrid::default().generate(0, &mut StdRng::seed_from_u64(1));
        assert!(AbsoluteAreaFlexibility::rejecting_mixed().of(&f).is_err());
    }
}
