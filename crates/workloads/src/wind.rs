//! Wind-turbine workloads: autocorrelated production, zero time flexibility.

use rand::{Rng, RngCore};

use flexoffers_model::{FlexOffer, Slice};

use crate::device::{DeviceKind, DeviceModel};
use crate::SLOTS_PER_DAY;

/// A wind turbine: a full-day production profile whose hourly forecast
/// follows an AR(1) process (wind persists), with uncertainty growing with
/// the forecast level. Amounts negative, time flexibility zero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindTurbine {
    /// Rated capacity per slot (positive; the model negates).
    pub capacity: i64,
    /// AR(1) persistence in `[0, 1)`.
    pub persistence: f64,
    /// Forecast uncertainty as a fraction of each slot's forecast.
    pub uncertainty: f64,
}

impl Default for WindTurbine {
    fn default() -> Self {
        Self {
            capacity: 12,
            persistence: 0.8,
            uncertainty: 0.25,
        }
    }
}

impl DeviceModel for WindTurbine {
    fn kind(&self) -> DeviceKind {
        DeviceKind::WindTurbine
    }

    fn generate(&self, day: i64, rng: &mut dyn RngCore) -> FlexOffer {
        let origin = day * SLOTS_PER_DAY;
        let mut level = rng.gen_range(0.2..=0.8) * self.capacity as f64;
        let slices: Vec<Slice> = (0..SLOTS_PER_DAY)
            .map(|_| {
                let shock = rng.gen_range(-0.3..=0.3) * self.capacity as f64;
                level = (self.persistence * level + shock).clamp(0.0, self.capacity as f64);
                let forecast = level.round();
                let spread = (forecast * self.uncertainty).ceil();
                let hi = (-(forecast - spread)).min(0.0) as i64;
                let lo = -(forecast + spread) as i64;
                Slice::new(lo, hi).expect("spread keeps ranges ordered")
            })
            .collect();
        FlexOffer::new(origin, origin, slices)
            .expect("wind parameters produce well-formed flex-offers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_day_profile_zero_time_flexibility() {
        let model = WindTurbine::default();
        let f = model.generate(0, &mut StdRng::seed_from_u64(21));
        assert_eq!(f.slice_count(), SLOTS_PER_DAY as usize);
        assert_eq!(f.time_flexibility(), 0);
        // Wind can be becalmed (slice max 0), so the sign is negative or,
        // in the extreme, zero — never consumption.
        assert_ne!(f.sign(), flexoffers_model::SignClass::Positive);
        assert_ne!(f.sign(), flexoffers_model::SignClass::Mixed);
    }

    #[test]
    fn persistence_bounds_hourly_jumps() {
        let model = WindTurbine::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let f = model.generate(0, &mut rng);
            for pair in f.slices().windows(2) {
                let jump = (pair[1].min() - pair[0].min()).abs();
                assert!(
                    jump <= (model.capacity as f64 * 0.7).ceil() as i64,
                    "hourly forecast jumped by {jump}"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let model = WindTurbine::default();
        let a = model.generate(1, &mut StdRng::seed_from_u64(3));
        let b = model.generate(1, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
