//! Synthetic spot-price traces for the Scenario 2 market simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flexoffers_timeseries::Series;

use crate::SLOTS_PER_DAY;

/// Configuration for a day-ahead price trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PriceTraceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of days.
    pub days: usize,
    /// Off-peak base price (currency per energy unit).
    pub base: f64,
    /// Peak uplift added during morning/evening peaks.
    pub peak_uplift: f64,
    /// Multiplicative noise amplitude.
    pub noise: f64,
}

impl Default for PriceTraceConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            days: 1,
            base: 10.0,
            peak_uplift: 8.0,
            noise: 0.1,
        }
    }
}

/// Generates a diurnal price curve: cheap nights, a morning peak (7–9), a
/// deeper evening peak (17–20), mild midday, plus multiplicative noise.
/// Prices are strictly positive.
pub fn price_trace(cfg: &PriceTraceConfig) -> Series<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut values = Vec::with_capacity(cfg.days * SLOTS_PER_DAY as usize);
    for _ in 0..cfg.days {
        for hour in 0..SLOTS_PER_DAY {
            let shape = match hour {
                7..=9 => 0.8,
                17..=20 => 1.0,
                10..=16 => 0.3,
                _ => 0.0,
            };
            let noise = 1.0 + rng.gen_range(-cfg.noise..=cfg.noise);
            values.push(((cfg.base + cfg.peak_uplift * shape) * noise).max(0.01));
        }
    }
    Series::new(0, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_cost_more_than_nights() {
        let trace = price_trace(&PriceTraceConfig {
            noise: 0.0,
            ..PriceTraceConfig::default()
        });
        let night = trace.at(2);
        let morning = trace.at(8);
        let evening = trace.at(18);
        assert!(morning > night);
        assert!(evening > morning);
    }

    #[test]
    fn strictly_positive() {
        let trace = price_trace(&PriceTraceConfig::default());
        assert!(trace.iter().all(|(_, v)| v > 0.0));
    }

    #[test]
    fn deterministic_and_day_count() {
        let cfg = PriceTraceConfig {
            days: 2,
            ..PriceTraceConfig::default()
        };
        let a = price_trace(&cfg);
        assert_eq!(a.len(), 48);
        assert_eq!(a, price_trace(&cfg));
    }
}
