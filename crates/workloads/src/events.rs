//! Deterministic flex-offer *event* workloads for the live serving tier.
//!
//! A production flexibility platform never sees a finished portfolio: offers
//! arrive, get revised as device states change, and disappear when devices
//! commit or unplug. [`event_stream`] turns the existing [`city`] builder
//! into exactly that shape — a seeded Add/Update/Remove sequence — so the
//! serving benches, the proptests, and the CLI script generator all draw
//! from one workload source.
//!
//! Ids follow the serving tier's contract: the `k`-th `Add` carries logical
//! id `k` (a monotone counter, never reused), and updates/removes reference
//! ids that are live at that point in the stream. Everything is a pure
//! function of `(seed, households, churn)`.
//!
//! [`city`]: crate::city

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flexoffers_model::FlexOffer;

use crate::device::DeviceModel;
use crate::dishwasher::Dishwasher;
use crate::ev::EvCharger;
use crate::fridge::Refrigerator;
use crate::heatpump::HeatPump;
use crate::population::{city_offer_count, city_stream, PopulationStream};
use crate::solar::SolarPanel;
use crate::v2g::VehicleToGrid;
use crate::wind::WindTurbine;

/// One mutation of a live flex-offer book.
///
/// The query side of a serving event loop lives with the server (queries
/// carry reply channels); this is the workload-generable part.
#[derive(Clone, Debug, PartialEq)]
pub enum OfferEvent {
    /// A new flex-offer arrives; the receiver assigns it the next logical
    /// id (the `k`-th add in a stream gets id `k`).
    Add(FlexOffer),
    /// The offer with logical id `id` is revised in place.
    Update {
        /// Logical id assigned at add time.
        id: u64,
        /// The replacement flex-offer.
        offer: FlexOffer,
    },
    /// The offer with logical id `id` leaves the book. Ids are never
    /// reused.
    Remove {
        /// Logical id assigned at add time.
        id: u64,
    },
}

/// A deterministic Add/Update/Remove sequence over the [`city`] workload:
/// every city offer arrives as an `Add` (in exactly the [`city_stream`]
/// order, so the post-add book *is* the city portfolio), followed by
/// `round(offers × churn)` churn events alternating `Update` (a fresh
/// device profile for a random live id) and `Remove` (a random live id
/// leaves).
///
/// The stream is lazy ([`EventStream`] generates one event at a time with
/// an exact size hint), so million-offer event scripts can be drained
/// straight into a live book or a file without materialising a `Vec`.
/// Deterministic under `(seed, households, churn)`; the churn RNG stream is
/// independent of the city generation stream.
///
/// # Panics
///
/// Panics if `churn` is not a finite fraction in `[0, 1]` — more churn
/// than offers would let removals outrun the book.
///
/// [`city`]: crate::city
pub fn event_stream(seed: u64, households: usize, churn: f64) -> EventStream {
    assert!(
        churn.is_finite() && (0.0..=1.0).contains(&churn),
        "churn must be a fraction in [0, 1], got {churn}"
    );
    let offers = city_offer_count(households);
    EventStream {
        adds: city_stream(seed, households),
        // A fixed xor keeps the churn stream well separated from the city
        // stream under equal seeds (seed_from_u64 expands via SplitMix64).
        rng: StdRng::seed_from_u64(seed ^ 0xc4a2_99d5_6f3e_81b7),
        models: replacement_models(),
        live: Vec::with_capacity(offers),
        next_id: 0,
        churn_remaining: ((offers as f64) * churn).round() as usize,
        churn_emitted: 0,
    }
}

/// Exact number of events [`event_stream`] yields for the given knobs.
pub fn event_stream_len(households: usize, churn: f64) -> usize {
    let offers = city_offer_count(households);
    offers + ((offers as f64) * churn).round() as usize
}

/// The device mix churn updates draw replacements from — every class the
/// city contains, so updates keep exercising negative and mixed offers.
fn replacement_models() -> Vec<Box<dyn DeviceModel>> {
    vec![
        Box::new(EvCharger::default()),
        Box::new(Dishwasher::default()),
        Box::new(HeatPump::default()),
        Box::new(Refrigerator::default()),
        Box::new(SolarPanel::default()),
        Box::new(WindTurbine::default()),
        Box::new(VehicleToGrid::default()),
    ]
}

/// The lazy generator behind [`event_stream`]; see there for the contract.
pub struct EventStream {
    adds: PopulationStream,
    rng: StdRng,
    models: Vec<Box<dyn DeviceModel>>,
    live: Vec<u64>,
    next_id: u64,
    churn_remaining: usize,
    churn_emitted: usize,
}

impl Iterator for EventStream {
    type Item = OfferEvent;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(offer) = self.adds.next() {
            self.live.push(self.next_id);
            self.next_id += 1;
            return Some(OfferEvent::Add(offer));
        }
        if self.churn_remaining == 0 || self.live.is_empty() {
            return None;
        }
        self.churn_remaining -= 1;
        let turn = self.churn_emitted;
        self.churn_emitted += 1;
        let at = self.rng.gen_range(0..self.live.len());
        if turn.is_multiple_of(2) {
            let id = self.live[at];
            let which = self.rng.gen_range(0..self.models.len());
            let offer = self.models[which].generate(0, &mut self.rng);
            Some(OfferEvent::Update { id, offer })
        } else {
            // Alternation caps removals at half the churn budget, and churn
            // is capped at 1.0, so the live set cannot drain below the
            // budget — the `is_empty` guard above is belt and braces.
            Some(OfferEvent::Remove {
                id: self.live.swap_remove(at),
            })
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.adds.len() + self.churn_remaining;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EventStream {}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream")
            .field("adds_remaining", &self.adds.len())
            .field("churn_remaining", &self.churn_remaining)
            .field("live", &self.live.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city;

    #[test]
    fn deterministic_under_the_knobs() {
        let a: Vec<OfferEvent> = event_stream(11, 40, 0.25).collect();
        let b: Vec<OfferEvent> = event_stream(11, 40, 0.25).collect();
        assert_eq!(a, b);
        let other_seed: Vec<OfferEvent> = event_stream(12, 40, 0.25).collect();
        assert_ne!(a, other_seed);
    }

    #[test]
    fn zero_churn_is_exactly_the_city_in_order() {
        let events: Vec<OfferEvent> = event_stream(7, 30, 0.0).collect();
        let portfolio = city(7, 30);
        assert_eq!(events.len(), portfolio.len());
        for (event, fo) in events.iter().zip(&portfolio) {
            assert_eq!(event, &OfferEvent::Add(fo.clone()));
        }
    }

    #[test]
    fn churn_counts_and_alternation_match_the_contract() {
        let households = 50;
        let offers = city_offer_count(households);
        let churn = 0.2;
        let events: Vec<OfferEvent> = event_stream(3, households, churn).collect();
        assert_eq!(events.len(), event_stream_len(households, churn));
        let adds = events
            .iter()
            .filter(|e| matches!(e, OfferEvent::Add(_)))
            .count();
        let updates = events
            .iter()
            .filter(|e| matches!(e, OfferEvent::Update { .. }))
            .count();
        let removes = events
            .iter()
            .filter(|e| matches!(e, OfferEvent::Remove { .. }))
            .count();
        assert_eq!(adds, offers);
        let total = ((offers as f64) * churn).round() as usize;
        assert_eq!(updates, total.div_ceil(2), "updates go first");
        assert_eq!(removes, total / 2);
        // All adds precede all churn.
        let first_churn = events
            .iter()
            .position(|e| !matches!(e, OfferEvent::Add(_)))
            .unwrap();
        assert_eq!(first_churn, offers);
    }

    #[test]
    fn updates_and_removes_reference_live_ids_only() {
        let mut live = std::collections::BTreeSet::new();
        let mut next = 0u64;
        for event in event_stream(9, 60, 1.0) {
            match event {
                OfferEvent::Add(_) => {
                    live.insert(next);
                    next += 1;
                }
                OfferEvent::Update { id, .. } => assert!(live.contains(&id), "update of dead {id}"),
                OfferEvent::Remove { id } => assert!(live.remove(&id), "remove of dead {id}"),
            }
        }
        assert!(!live.is_empty(), "full churn still leaves half the book");
    }

    #[test]
    fn size_hint_is_exact_and_counts_down() {
        let mut stream = event_stream(5, 10, 0.5);
        let expected = event_stream_len(10, 0.5);
        assert_eq!(stream.len(), expected);
        stream.next().expect("at least one event");
        assert_eq!(stream.len(), expected - 1);
        assert_eq!(stream.by_ref().count(), expected - 1);
        assert_eq!(stream.len(), 0);
    }

    #[test]
    #[should_panic(expected = "churn must be a fraction")]
    fn out_of_range_churn_is_rejected() {
        event_stream(1, 10, 1.5);
    }
}
