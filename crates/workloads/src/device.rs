//! The device-model interface.

use rand::RngCore;

use flexoffers_model::FlexOffer;

/// The device classes the generators cover (the appliances the paper's
/// Scenario 1 lists, plus the production units of Section 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Electric vehicle charger (the paper's use case).
    ElectricVehicle,
    /// Dishwasher.
    Dishwasher,
    /// Heat pump.
    HeatPump,
    /// Smart refrigerator.
    Refrigerator,
    /// Solar panel (production).
    SolarPanel,
    /// Wind turbine (production).
    WindTurbine,
    /// Vehicle-to-grid battery (mixed).
    VehicleToGrid,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            DeviceKind::ElectricVehicle => "electric vehicle",
            DeviceKind::Dishwasher => "dishwasher",
            DeviceKind::HeatPump => "heat pump",
            DeviceKind::Refrigerator => "refrigerator",
            DeviceKind::SolarPanel => "solar panel",
            DeviceKind::WindTurbine => "wind turbine",
            DeviceKind::VehicleToGrid => "vehicle-to-grid",
        };
        f.write_str(label)
    }
}

/// A parameterised generator of flex-offers for one device class.
///
/// Implementations must be deterministic given the RNG stream and must
/// always produce well-formed flex-offers (generation is infallible; bad
/// *parameters* are rejected at model construction, not at generation).
pub trait DeviceModel {
    /// The device class this model generates.
    fn kind(&self) -> DeviceKind;

    /// Generates one flex-offer for `day` (profile anchored at
    /// `day * SLOTS_PER_DAY`).
    fn generate(&self, day: i64, rng: &mut dyn RngCore) -> FlexOffer;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels() {
        assert_eq!(DeviceKind::ElectricVehicle.to_string(), "electric vehicle");
        assert_eq!(DeviceKind::VehicleToGrid.to_string(), "vehicle-to-grid");
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &dyn DeviceModel) {}
    }
}
