//! Smart-refrigerator workloads: short cooling bursts, little of either
//! flexibility — the small fry that makes aggregation necessary.

use rand::{Rng, RngCore};

use flexoffers_model::{FlexOffer, Slice};

use crate::device::{DeviceKind, DeviceModel};
use crate::SLOTS_PER_DAY;

/// A smart refrigerator: one or two slots of compressor duty that can shift
/// by an hour or two within its thermal band.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Refrigerator {
    /// Maximum start shift in slots.
    pub max_shift: i64,
    /// Compressor draw per slot (energy units).
    pub draw: i64,
}

impl Default for Refrigerator {
    fn default() -> Self {
        Self {
            max_shift: 2,
            draw: 1,
        }
    }
}

impl DeviceModel for Refrigerator {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Refrigerator
    }

    fn generate(&self, day: i64, rng: &mut dyn RngCore) -> FlexOffer {
        let origin = day * SLOTS_PER_DAY;
        let earliest = origin + rng.gen_range(0..SLOTS_PER_DAY - 4);
        let shift = rng.gen_range(0..=self.max_shift);
        let bursts = rng.gen_range(1..=2usize);
        let slices =
            vec![Slice::new(self.draw, self.draw + 1).expect("draw range ordered"); bursts];
        FlexOffer::new(earliest, earliest + shift, slices)
            .expect("refrigerator parameters produce well-formed flex-offers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_in_both_dimensions() {
        let model = Refrigerator::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let f = model.generate(0, &mut rng);
            assert!(f.time_flexibility() <= model.max_shift);
            assert!(f.energy_flexibility() <= 2);
            assert!(f.total_max() <= 4, "fridges are tiny loads");
            assert_eq!(f.sign(), flexoffers_model::SignClass::Positive);
        }
    }

    #[test]
    fn stays_within_the_day_window() {
        let model = Refrigerator::default();
        let mut rng = StdRng::seed_from_u64(11);
        let f = model.generate(2, &mut rng);
        assert!(f.earliest_start() >= 2 * SLOTS_PER_DAY);
        assert!(f.latest_end() <= 3 * SLOTS_PER_DAY);
    }
}
