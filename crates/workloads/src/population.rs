//! District-scale populations of prosumer devices.

use rand::rngs::StdRng;
use rand::SeedableRng;

use flexoffers_model::Portfolio;

use crate::device::DeviceModel;
use crate::dishwasher::Dishwasher;
use crate::ev::EvCharger;
use crate::fridge::Refrigerator;
use crate::heatpump::HeatPump;
use crate::solar::SolarPanel;
use crate::v2g::VehicleToGrid;
use crate::wind::WindTurbine;

/// Builds a portfolio from configurable device counts, deterministically
/// under a seed.
///
/// ```
/// use flexoffers_workloads::PopulationBuilder;
///
/// let portfolio = PopulationBuilder::new(42)
///     .electric_vehicles(10)
///     .dishwashers(20)
///     .solar_panels(5)
///     .build();
/// assert_eq!(portfolio.len(), 35);
/// // Same seed, same portfolio.
/// let again = PopulationBuilder::new(42)
///     .electric_vehicles(10)
///     .dishwashers(20)
///     .solar_panels(5)
///     .build();
/// assert_eq!(portfolio, again);
/// ```
#[derive(Clone, Debug)]
pub struct PopulationBuilder {
    seed: u64,
    day: i64,
    evs: usize,
    dishwashers: usize,
    heat_pumps: usize,
    fridges: usize,
    solars: usize,
    winds: usize,
    v2gs: usize,
}

impl PopulationBuilder {
    /// Starts an empty population with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            day: 0,
            evs: 0,
            dishwashers: 0,
            heat_pumps: 0,
            fridges: 0,
            solars: 0,
            winds: 0,
            v2gs: 0,
        }
    }

    /// Anchors profiles at the given day (default 0).
    pub fn day(mut self, day: i64) -> Self {
        self.day = day;
        self
    }

    /// Adds EV chargers.
    pub fn electric_vehicles(mut self, n: usize) -> Self {
        self.evs = n;
        self
    }

    /// Adds dishwashers.
    pub fn dishwashers(mut self, n: usize) -> Self {
        self.dishwashers = n;
        self
    }

    /// Adds heat pumps.
    pub fn heat_pumps(mut self, n: usize) -> Self {
        self.heat_pumps = n;
        self
    }

    /// Adds refrigerators.
    pub fn refrigerators(mut self, n: usize) -> Self {
        self.fridges = n;
        self
    }

    /// Adds solar panels.
    pub fn solar_panels(mut self, n: usize) -> Self {
        self.solars = n;
        self
    }

    /// Adds wind turbines.
    pub fn wind_turbines(mut self, n: usize) -> Self {
        self.winds = n;
        self
    }

    /// Adds vehicle-to-grid batteries.
    pub fn vehicle_to_grid(mut self, n: usize) -> Self {
        self.v2gs = n;
        self
    }

    /// Generates the portfolio.
    pub fn build(&self) -> Portfolio {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut portfolio = Portfolio::new();
        let mut emit = |model: &dyn DeviceModel, n: usize| {
            for _ in 0..n {
                portfolio.push(model.generate(self.day, &mut rng));
            }
        };
        emit(&EvCharger::default(), self.evs);
        emit(&Dishwasher::default(), self.dishwashers);
        emit(&HeatPump::default(), self.heat_pumps);
        emit(&Refrigerator::default(), self.fridges);
        emit(&SolarPanel::default(), self.solars);
        emit(&WindTurbine::default(), self.winds);
        emit(&VehicleToGrid::default(), self.v2gs);
        portfolio
    }
}

/// A district preset: `households` homes with a Danish-flavoured device mix
/// (40 % EVs, 80 % dishwashers, 60 % heat pumps, one fridge each, 25 % solar,
/// 5 % V2G) plus one shared wind turbine per 100 households.
pub fn district(seed: u64, households: usize) -> Portfolio {
    PopulationBuilder::new(seed)
        .electric_vehicles(households * 2 / 5)
        .dishwashers(households * 4 / 5)
        .heat_pumps(households * 3 / 5)
        .refrigerators(households)
        .solar_panels(households / 4)
        .vehicle_to_grid(households / 20)
        .wind_turbines(households / 100)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::SignClass;

    #[test]
    fn builder_counts_add_up() {
        let p = PopulationBuilder::new(1)
            .electric_vehicles(3)
            .dishwashers(2)
            .heat_pumps(1)
            .refrigerators(4)
            .solar_panels(2)
            .wind_turbines(1)
            .vehicle_to_grid(1)
            .build();
        assert_eq!(p.len(), 14);
        let summary = p.sign_summary();
        assert_eq!(summary.negative, 3); // solar + wind
        assert_eq!(summary.mixed, 1); // v2g
        assert_eq!(summary.positive, 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = district(7, 20);
        let b = district(7, 20);
        assert_eq!(a, b);
        let c = district(8, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn district_mix_is_diverse() {
        let p = district(3, 100);
        let s = p.sign_summary();
        assert!(s.positive > 0 && s.negative > 0 && s.mixed > 0);
        assert_eq!(p.len(), 40 + 80 + 60 + 100 + 25 + 5 + 1);
    }

    #[test]
    fn all_generated_offers_are_well_formed_with_valid_extremes() {
        // FlexOffer construction enforces invariants; additionally verify
        // every offer admits at least one valid assignment.
        let p = district(9, 30);
        for fo in &p {
            assert!(fo.constrained_assignment_count().is_none_or(|n| n > 0));
            if fo.sign() == SignClass::Positive {
                assert!(fo.total_max() > 0);
            }
        }
    }

    #[test]
    fn day_anchoring_shifts_profiles() {
        let today = PopulationBuilder::new(5).electric_vehicles(2).build();
        let tomorrow = PopulationBuilder::new(5)
            .electric_vehicles(2)
            .day(1)
            .build();
        for (a, b) in today.iter().zip(tomorrow.iter()) {
            assert_eq!(
                a.earliest_start() + crate::SLOTS_PER_DAY,
                b.earliest_start()
            );
        }
    }
}
