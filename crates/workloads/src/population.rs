//! District-scale populations of prosumer devices.

use rand::rngs::StdRng;
use rand::SeedableRng;

use flexoffers_model::Portfolio;

use crate::device::DeviceModel;
use crate::dishwasher::Dishwasher;
use crate::ev::EvCharger;
use crate::fridge::Refrigerator;
use crate::heatpump::HeatPump;
use crate::solar::SolarPanel;
use crate::v2g::VehicleToGrid;
use crate::wind::WindTurbine;

/// Builds a portfolio from configurable device counts, deterministically
/// under a seed.
///
/// ```
/// use flexoffers_workloads::PopulationBuilder;
///
/// let portfolio = PopulationBuilder::new(42)
///     .electric_vehicles(10)
///     .dishwashers(20)
///     .solar_panels(5)
///     .build();
/// assert_eq!(portfolio.len(), 35);
/// // Same seed, same portfolio.
/// let again = PopulationBuilder::new(42)
///     .electric_vehicles(10)
///     .dishwashers(20)
///     .solar_panels(5)
///     .build();
/// assert_eq!(portfolio, again);
/// ```
#[derive(Clone, Debug)]
pub struct PopulationBuilder {
    seed: u64,
    day: i64,
    evs: usize,
    dishwashers: usize,
    heat_pumps: usize,
    fridges: usize,
    solars: usize,
    winds: usize,
    v2gs: usize,
}

impl PopulationBuilder {
    /// Starts an empty population with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            day: 0,
            evs: 0,
            dishwashers: 0,
            heat_pumps: 0,
            fridges: 0,
            solars: 0,
            winds: 0,
            v2gs: 0,
        }
    }

    /// Anchors profiles at the given day (default 0).
    pub fn day(mut self, day: i64) -> Self {
        self.day = day;
        self
    }

    /// Adds EV chargers.
    pub fn electric_vehicles(mut self, n: usize) -> Self {
        self.evs = n;
        self
    }

    /// Adds dishwashers.
    pub fn dishwashers(mut self, n: usize) -> Self {
        self.dishwashers = n;
        self
    }

    /// Adds heat pumps.
    pub fn heat_pumps(mut self, n: usize) -> Self {
        self.heat_pumps = n;
        self
    }

    /// Adds refrigerators.
    pub fn refrigerators(mut self, n: usize) -> Self {
        self.fridges = n;
        self
    }

    /// Adds solar panels.
    pub fn solar_panels(mut self, n: usize) -> Self {
        self.solars = n;
        self
    }

    /// Adds wind turbines.
    pub fn wind_turbines(mut self, n: usize) -> Self {
        self.winds = n;
        self
    }

    /// Adds vehicle-to-grid batteries.
    pub fn vehicle_to_grid(mut self, n: usize) -> Self {
        self.v2gs = n;
        self
    }

    /// Generates the portfolio.
    pub fn build(&self) -> Portfolio {
        self.stream().collect()
    }

    /// Generates the population lazily, one flex-offer at a time, in
    /// exactly the order (and with exactly the RNG stream) [`build`] uses —
    /// `builder.stream().collect::<Portfolio>() == builder.build()` bit for
    /// bit. This is the allocation-frugal entry point for shard-scale
    /// consumers: a million-offer city can be drained straight into
    /// per-shard buffers without one giant `Vec` materialised up front.
    ///
    /// [`build`]: PopulationBuilder::build
    pub fn stream(&self) -> PopulationStream {
        let schedule: Vec<(Box<dyn DeviceModel>, usize)> = vec![
            (Box::new(EvCharger::default()), self.evs),
            (Box::new(Dishwasher::default()), self.dishwashers),
            (Box::new(HeatPump::default()), self.heat_pumps),
            (Box::new(Refrigerator::default()), self.fridges),
            (Box::new(SolarPanel::default()), self.solars),
            (Box::new(WindTurbine::default()), self.winds),
            (Box::new(VehicleToGrid::default()), self.v2gs),
        ];
        let remaining = schedule.iter().map(|(_, n)| n).sum();
        PopulationStream {
            rng: StdRng::seed_from_u64(self.seed),
            day: self.day,
            schedule,
            position: 0,
            emitted_in_current: 0,
            remaining,
        }
    }
}

/// A lazy flex-offer generator over a [`PopulationBuilder`]'s device
/// schedule — see [`PopulationBuilder::stream`]. The iterator reports an
/// exact [`size_hint`](Iterator::size_hint), so `collect` into a `Vec` or
/// [`Portfolio`] allocates once.
pub struct PopulationStream {
    rng: StdRng,
    day: i64,
    schedule: Vec<(Box<dyn DeviceModel>, usize)>,
    position: usize,
    emitted_in_current: usize,
    remaining: usize,
}

impl Iterator for PopulationStream {
    type Item = flexoffers_model::FlexOffer;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (model, count) = self.schedule.get(self.position)?;
            if self.emitted_in_current < *count {
                self.emitted_in_current += 1;
                self.remaining -= 1;
                return Some(model.generate(self.day, &mut self.rng));
            }
            self.position += 1;
            self.emitted_in_current = 0;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PopulationStream {}

impl std::fmt::Debug for PopulationStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PopulationStream")
            .field("day", &self.day)
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}

/// A district preset: `households` homes with a Danish-flavoured device mix
/// (40 % EVs, 80 % dishwashers, 60 % heat pumps, one fridge each, 25 % solar,
/// 5 % V2G) plus one shared wind turbine per 100 households.
pub fn district(seed: u64, households: usize) -> Portfolio {
    PopulationBuilder::new(seed)
        .electric_vehicles(households * 2 / 5)
        .dishwashers(households * 4 / 5)
        .heat_pumps(households * 3 / 5)
        .refrigerators(households)
        .solar_panels(households / 4)
        .vehicle_to_grid(households / 20)
        .wind_turbines(households / 100)
        .build()
}

/// A city preset for portfolio-scale (100k+ offer) engine workloads: a
/// denser, more electrified mix than [`district`] — 55 % EVs, 90 %
/// dishwashers, 70 % heat pumps, one fridge each, 15 % rooftop solar, 8 %
/// V2G, one utility wind turbine per 200 households.
///
/// The offer count grows by roughly 3.38 offers per household
/// ([`city_offer_count`] gives the exact figure, accounting for the
/// per-device integer truncation), so ~30k households exercise a
/// 100k-offer engine run. Deterministic under `seed` like every generator
/// here.
pub fn city(seed: u64, households: usize) -> Portfolio {
    city_builder(seed, households).build()
}

/// The [`city`] preset as a lazy stream: the exact same offers in the exact
/// same order, generated one at a time — million-offer cities can be drained
/// straight into shard buffers without a single full-portfolio `Vec`.
pub fn city_stream(seed: u64, households: usize) -> PopulationStream {
    city_builder(seed, households).stream()
}

fn city_builder(seed: u64, households: usize) -> PopulationBuilder {
    PopulationBuilder::new(seed)
        .electric_vehicles(households * 11 / 20)
        .dishwashers(households * 9 / 10)
        .heat_pumps(households * 7 / 10)
        .refrigerators(households)
        .solar_panels(households * 3 / 20)
        .vehicle_to_grid(households * 2 / 25)
        .wind_turbines(households / 200)
}

/// Exact number of offers [`city`] generates for `households`.
pub fn city_offer_count(households: usize) -> usize {
    households * 11 / 20
        + households * 9 / 10
        + households * 7 / 10
        + households
        + households * 3 / 20
        + households * 2 / 25
        + households / 200
}

/// The smallest household count for which [`city`] yields at least
/// `offers` flex-offers — pair with
/// [`Portfolio::truncate`](flexoffers_model::Portfolio::truncate) for an
/// exact benchmark size.
pub fn city_households_for(offers: usize) -> usize {
    // city_offer_count grows ~3.38 per household; start below and step up.
    let mut households = offers * 20 / 69;
    while city_offer_count(households) < offers {
        households += 1;
    }
    households
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexoffers_model::SignClass;

    #[test]
    fn builder_counts_add_up() {
        let p = PopulationBuilder::new(1)
            .electric_vehicles(3)
            .dishwashers(2)
            .heat_pumps(1)
            .refrigerators(4)
            .solar_panels(2)
            .wind_turbines(1)
            .vehicle_to_grid(1)
            .build();
        assert_eq!(p.len(), 14);
        let summary = p.sign_summary();
        assert_eq!(summary.negative, 3); // solar + wind
        assert_eq!(summary.mixed, 1); // v2g
        assert_eq!(summary.positive, 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = district(7, 20);
        let b = district(7, 20);
        assert_eq!(a, b);
        let c = district(8, 20);
        assert_ne!(a, c);
    }

    #[test]
    fn district_mix_is_diverse() {
        let p = district(3, 100);
        let s = p.sign_summary();
        assert!(s.positive > 0 && s.negative > 0 && s.mixed > 0);
        assert_eq!(p.len(), 40 + 80 + 60 + 100 + 25 + 5 + 1);
    }

    #[test]
    fn all_generated_offers_are_well_formed_with_valid_extremes() {
        // FlexOffer construction enforces invariants; additionally verify
        // every offer admits at least one valid assignment.
        let p = district(9, 30);
        for fo in &p {
            assert!(fo.constrained_assignment_count().is_none_or(|n| n > 0));
            if fo.sign() == SignClass::Positive {
                assert!(fo.total_max() > 0);
            }
        }
    }

    #[test]
    fn city_count_formula_is_exact_and_deterministic() {
        for households in [0, 1, 7, 199, 200, 1000] {
            let p = city(11, households);
            assert_eq!(p.len(), city_offer_count(households), "{households}");
        }
        assert_eq!(city(11, 300), city(11, 300));
        assert_ne!(city(11, 300), city(12, 300));
    }

    #[test]
    fn city_households_for_hits_the_target() {
        for target in [1, 1000, 10_000, 100_000] {
            let households = city_households_for(target);
            assert!(city_offer_count(households) >= target);
            assert!(households == 0 || city_offer_count(households - 1) < target);
        }
    }

    #[test]
    fn city_mix_is_diverse() {
        let p = city(3, 400);
        let s = p.sign_summary();
        assert!(s.positive > 0 && s.negative > 0 && s.mixed > 0);
    }

    #[test]
    fn stream_replays_build_exactly() {
        let builder = PopulationBuilder::new(13)
            .electric_vehicles(3)
            .dishwashers(2)
            .solar_panels(1)
            .vehicle_to_grid(1)
            .day(2);
        let streamed: Portfolio = builder.stream().collect();
        assert_eq!(streamed, builder.build());
    }

    #[test]
    fn city_stream_replays_city_exactly_with_exact_size_hint() {
        for households in [0, 1, 37, 400] {
            let stream = city_stream(11, households);
            assert_eq!(stream.len(), city_offer_count(households));
            let streamed: Portfolio = stream.collect();
            assert_eq!(streamed, city(11, households), "{households} households");
        }
    }

    #[test]
    fn stream_size_hint_counts_down() {
        let mut stream = PopulationBuilder::new(1).refrigerators(3).stream();
        assert_eq!(stream.size_hint(), (3, Some(3)));
        stream.next().expect("three offers");
        assert_eq!(stream.size_hint(), (2, Some(2)));
        assert_eq!(stream.by_ref().count(), 2);
        assert_eq!(stream.size_hint(), (0, Some(0)));
        assert!(stream.next().is_none());
    }

    #[test]
    fn day_anchoring_shifts_profiles() {
        let today = PopulationBuilder::new(5).electric_vehicles(2).build();
        let tomorrow = PopulationBuilder::new(5)
            .electric_vehicles(2)
            .day(1)
            .build();
        for (a, b) in today.iter().zip(tomorrow.iter()) {
            assert_eq!(
                a.earliest_start() + crate::SLOTS_PER_DAY,
                b.earliest_start()
            );
        }
    }
}
