//! Solar-panel workloads: production flex-offers with zero time flexibility.

use rand::{Rng, RngCore};

use flexoffers_model::{FlexOffer, Slice};

use crate::device::{DeviceKind, DeviceModel};
use crate::SLOTS_PER_DAY;

/// A rooftop solar panel: production follows the sun (no start-time
/// flexibility at all), with per-slot forecast uncertainty expressed as the
/// slice range. Amounts are negative per the paper's production convention.
///
/// Solar is the canonical `tf = 0` case: the product measure values it at
/// zero no matter how uncertain the forecast (Example 11's blind spot),
/// while vector/energy measures still see the amount flexibility.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolarPanel {
    /// Hour the panel starts producing, e.g. 8.
    pub sunrise: i64,
    /// Hours of production, e.g. 9.
    pub daylight: usize,
    /// Peak production in energy units (positive; the model negates).
    pub peak: i64,
    /// Forecast uncertainty as a fraction of each slot's forecast.
    pub uncertainty: f64,
}

impl Default for SolarPanel {
    fn default() -> Self {
        Self {
            sunrise: 8,
            daylight: 9,
            peak: 8,
            uncertainty: 0.3,
        }
    }
}

impl DeviceModel for SolarPanel {
    fn kind(&self) -> DeviceKind {
        DeviceKind::SolarPanel
    }

    fn generate(&self, day: i64, rng: &mut dyn RngCore) -> FlexOffer {
        let origin = day * SLOTS_PER_DAY;
        let start = origin + self.sunrise;
        // Cloud factor scales the whole day.
        let cloud = rng.gen_range(0.6..=1.0);
        let slices: Vec<Slice> = (0..self.daylight)
            .map(|h| {
                // Half-sine bell over the daylight hours.
                let phase = (h as f64 + 0.5) / self.daylight as f64 * std::f64::consts::PI;
                let forecast = (self.peak as f64 * phase.sin() * cloud).round();
                let spread = (forecast * self.uncertainty).ceil();
                // Production: between -(forecast+spread) and -(forecast-spread).
                let hi = (-(forecast - spread)).min(0.0) as i64;
                let lo = -(forecast + spread) as i64;
                Slice::new(lo, hi).expect("spread keeps ranges ordered")
            })
            .collect();
        FlexOffer::new(start, start, slices)
            .expect("solar parameters produce well-formed flex-offers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_time_flexibility_negative_sign() {
        let model = SolarPanel::default();
        let mut rng = StdRng::seed_from_u64(13);
        for day in 0..10 {
            let f = model.generate(day, &mut rng);
            assert_eq!(f.time_flexibility(), 0, "the sun cannot be shifted");
            assert_eq!(f.sign(), flexoffers_model::SignClass::Negative);
            assert!(f.energy_flexibility() > 0, "forecast uncertainty");
        }
    }

    #[test]
    fn bell_shape_peaks_midday() {
        let model = SolarPanel::default();
        let f = model.generate(0, &mut StdRng::seed_from_u64(2));
        let mid = f.slice_count() / 2;
        // Midday produces more (more negative minimum) than the edges.
        assert!(f.slices()[mid].min() < f.slices()[0].min());
        assert!(f.slices()[mid].min() < f.slices()[f.slice_count() - 1].min());
    }

    #[test]
    fn product_measure_blind_spot() {
        // The pathology the paper's Example 11 warns about, in the wild.
        let f = SolarPanel::default().generate(0, &mut StdRng::seed_from_u64(3));
        assert_eq!(
            f.time_flexibility() as f64 * f.energy_flexibility() as f64,
            0.0
        );
        assert!(f.energy_flexibility() > 0);
    }
}
