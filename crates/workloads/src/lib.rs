//! Synthetic prosumer workloads for flex-offer experiments.
//!
//! The paper's evaluation setting — the Danish TotalFlex project — works on
//! proprietary prosumer data we cannot ship. This crate substitutes seeded
//! synthetic device models whose *flex-offer structure* mirrors the paper's
//! own descriptions (see DESIGN.md, "Substitutions"):
//!
//! * [`ev::EvCharger`] — the introduction's use case: evening plug-in,
//!   morning deadline, a 60–100 % charge-level band ([`ev::EvCharger::paper_use_case`]
//!   reproduces the exact 23:00/6:00/60 % story);
//! * [`dishwasher::Dishwasher`], [`heatpump::HeatPump`],
//!   [`fridge::Refrigerator`] — the household appliances Scenario 1 lists;
//! * [`solar::SolarPanel`], [`wind::WindTurbine`] — production (negative)
//!   flex-offers with *zero time flexibility*, the pathology that breaks the
//!   product measure (Example 11);
//! * [`v2g::VehicleToGrid`] — the paper's example of a *mixed* flex-offer;
//! * [`population`] — district-scale portfolios with a realistic device mix;
//! * [`events`] — seeded Add/Update/Remove event streams over the city
//!   builder, the shared workload of the live serving tier's benches and
//!   tests;
//! * [`res`] and [`price`] — renewable production and spot price traces for
//!   the scheduling and market experiments.
//!
//! All generation is deterministic under a seed. One slot = one hour, slot
//! `0` = midnight of day 0; energy units are abstract (think 100 Wh per
//! unit) per the paper's granularity-by-coefficient convention.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod dishwasher;
pub mod ev;
pub mod events;
pub mod fridge;
pub mod heatpump;
pub mod population;
pub mod price;
pub mod res;
pub mod solar;
pub mod v2g;
pub mod wind;

pub use device::{DeviceKind, DeviceModel};
pub use dishwasher::Dishwasher;
pub use ev::EvCharger;
pub use events::{event_stream, event_stream_len, EventStream, OfferEvent};
pub use fridge::Refrigerator;
pub use heatpump::HeatPump;
pub use population::{
    city, city_households_for, city_offer_count, city_stream, district, PopulationBuilder,
    PopulationStream,
};
pub use solar::SolarPanel;
pub use v2g::VehicleToGrid;
pub use wind::WindTurbine;

/// Slots per day at the default one-hour granularity.
pub const SLOTS_PER_DAY: i64 = 24;
