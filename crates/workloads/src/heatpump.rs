//! Heat-pump workloads: long profiles with per-slot modulation and a
//! comfort band on the daily total.

use rand::{Rng, RngCore};

use flexoffers_model::{FlexOffer, Slice};

use crate::device::{DeviceKind, DeviceModel};
use crate::SLOTS_PER_DAY;

/// A heat pump: runs for several hours, each hour modulated between a
/// minimum and maximum compressor level; thermal inertia gives a couple of
/// hours of start flexibility and a comfort band on the total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeatPump {
    /// Earliest start hour of day.
    pub window_from: i64,
    /// Latest start hour of day.
    pub window_to: i64,
    /// Run length range in slots.
    pub run_min: usize,
    /// Maximum run length in slots.
    pub run_max: usize,
    /// Per-slot modulation range (energy units).
    pub level_min: i64,
    /// Per-slot maximum level.
    pub level_max: i64,
    /// Comfort band: required fraction of the maximum total, lower end.
    pub comfort_fraction: f64,
}

impl Default for HeatPump {
    fn default() -> Self {
        Self {
            window_from: 0,
            window_to: 4,
            run_min: 4,
            run_max: 8,
            level_min: 1,
            level_max: 4,
            comfort_fraction: 0.7,
        }
    }
}

impl DeviceModel for HeatPump {
    fn kind(&self) -> DeviceKind {
        DeviceKind::HeatPump
    }

    fn generate(&self, day: i64, rng: &mut dyn RngCore) -> FlexOffer {
        let origin = day * SLOTS_PER_DAY;
        let earliest = origin + rng.gen_range(self.window_from..=self.window_to);
        let run = rng.gen_range(self.run_min..=self.run_max);
        let latest = earliest + rng.gen_range(1..=3);
        let slices = vec![Slice::new(self.level_min, self.level_max).expect("levels ordered"); run];
        let profile_max = self.level_max * run as i64;
        let profile_min = self.level_min * run as i64;
        let comfort_min = ((profile_max as f64 * self.comfort_fraction) as i64).max(profile_min);
        FlexOffer::with_totals(earliest, latest, slices, comfort_min, profile_max)
            .expect("heat pump parameters produce well-formed flex-offers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn comfort_band_constrains_totals() {
        let model = HeatPump::default();
        let mut rng = StdRng::seed_from_u64(2);
        for day in 0..10 {
            let f = model.generate(day, &mut rng);
            assert!(f.total_min() > f.profile_min(), "comfort floor binds");
            assert_eq!(f.total_max(), f.profile_max());
            assert!(!f.has_default_totals());
            assert_eq!(f.sign(), flexoffers_model::SignClass::Positive);
        }
    }

    #[test]
    fn run_length_in_range() {
        let model = HeatPump::default();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let f = model.generate(0, &mut rng);
            assert!((model.run_min..=model.run_max).contains(&f.slice_count()));
        }
    }

    #[test]
    fn both_flexibilities_present() {
        let model = HeatPump::default();
        let f = model.generate(0, &mut StdRng::seed_from_u64(6));
        assert!(f.time_flexibility() >= 1);
        assert!(f.energy_flexibility() > 0);
    }
}
