//! Dishwasher workloads: a fixed program shape with a wide overnight start
//! window — high time flexibility, low energy flexibility.

use rand::{Rng, RngCore};

use flexoffers_model::{FlexOffer, Slice};

use crate::device::{DeviceKind, DeviceModel};
use crate::SLOTS_PER_DAY;

/// A dishwasher: loaded in the evening, must be done by breakfast; the
/// program's per-phase consumption is nearly fixed (heating, washing,
/// drying), so nearly all its flexibility is temporal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dishwasher {
    /// Earliest start hour of day (inclusive), e.g. 19.
    pub ready_from: i64,
    /// Latest ready hour (inclusive).
    pub ready_to: i64,
    /// Completion deadline hour next day.
    pub deadline: i64,
    /// Per-phase wiggle room in energy units (0 = fully rigid program).
    pub phase_slack: i64,
}

impl Default for Dishwasher {
    fn default() -> Self {
        Self {
            ready_from: 19,
            ready_to: 23,
            deadline: 7,
            phase_slack: 1,
        }
    }
}

/// The three-phase program shape: heat, wash, dry (energy units).
const PROGRAM: [i64; 3] = [4, 2, 3];

impl DeviceModel for Dishwasher {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Dishwasher
    }

    fn generate(&self, day: i64, rng: &mut dyn RngCore) -> FlexOffer {
        let origin = day * SLOTS_PER_DAY;
        let ready = origin + rng.gen_range(self.ready_from..=self.ready_to);
        let deadline = origin + SLOTS_PER_DAY + self.deadline;
        let latest = (deadline - PROGRAM.len() as i64).max(ready);
        let slices = PROGRAM
            .iter()
            .map(|&base| {
                Slice::new((base - self.phase_slack).max(0), base + self.phase_slack)
                    .expect("slack keeps ranges ordered")
            })
            .collect();
        FlexOffer::new(ready, latest, slices)
            .expect("dishwasher parameters produce well-formed flex-offers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn time_dominant_flexibility() {
        let model = Dishwasher::default();
        let mut rng = StdRng::seed_from_u64(3);
        for day in 0..10 {
            let f = model.generate(day, &mut rng);
            assert!(f.time_flexibility() >= 5, "overnight window is wide");
            assert!(f.energy_flexibility() <= 6, "program is nearly rigid");
            assert_eq!(f.slice_count(), 3);
            assert_eq!(f.sign(), flexoffers_model::SignClass::Positive);
        }
    }

    #[test]
    fn rigid_program_when_slack_is_zero() {
        let model = Dishwasher {
            phase_slack: 0,
            ..Dishwasher::default()
        };
        let f = model.generate(0, &mut StdRng::seed_from_u64(1));
        assert_eq!(f.energy_flexibility(), 0);
        // Example 11's shape: pure time flexibility, product measure zero.
        assert!(f.time_flexibility() > 0);
    }

    #[test]
    fn finishes_by_deadline() {
        let model = Dishwasher::default();
        let mut rng = StdRng::seed_from_u64(8);
        for day in 0..10 {
            let f = model.generate(day, &mut rng);
            assert!(f.latest_end() <= (day + 1) * SLOTS_PER_DAY + model.deadline);
        }
    }
}
