//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length is
/// uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.size.clone());
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}
