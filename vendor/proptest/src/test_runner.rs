//! The case runner: deterministic seeds, env overrides, and failing-seed
//! persistence under `proptest-regressions/`.

use std::fmt;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies. Deterministic per test case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying random word source.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

/// Default number of cases when neither the config nor `PROPTEST_CASES`
/// says otherwise. Deliberately modest so full-workspace `cargo test -q`
/// stays fast; raise per-run with the env var when hunting bugs.
pub const DEFAULT_CASES: u32 = 64;

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// A failed (or discarded) test case, produced by the `prop_assert*` and
/// `prop_assume!` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
    is_reject: bool,
}

impl TestCaseError {
    /// A genuine assertion failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            is_reject: false,
        }
    }

    /// A discarded case (unsatisfied `prop_assume!`).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError {
            message: reason.into(),
            is_reject: true,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runs one property: replays persisted regression seeds first, then fresh
/// deterministic cases. On failure the seed is appended to
/// `proptest-regressions/<test-file>.txt` under the crate root and the test
/// panics with the seed in the message.
pub fn run(
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    cfg: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let regression_path = regression_file(manifest_dir, source_file);

    for seed in load_seeds(&regression_path, test_name) {
        run_case(seed, &regression_path, test_name, true, &mut body);
    }

    let base = fnv64(source_file.as_bytes()) ^ fnv64(test_name.as_bytes());
    for i in 0..cfg.effective_cases() {
        let seed = base.wrapping_add(u64::from(i).wrapping_mul(0x9e3779b97f4a7c15));
        run_case(seed, &regression_path, test_name, false, &mut body);
    }
}

fn run_case(
    seed: u64,
    regression_path: &Path,
    test_name: &str,
    replay: bool,
    body: &mut impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_seed(seed);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
    let kind = if replay {
        "replayed regression"
    } else {
        "case"
    };
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) if e.is_reject => {}
        Ok(Err(e)) => {
            persist_seed(regression_path, test_name, seed);
            panic!(
                "proptest {kind} failed (seed {seed}, recorded in {}):\n{e}",
                regression_path.display()
            );
        }
        Err(panic_payload) => {
            persist_seed(regression_path, test_name, seed);
            let msg = panic_message(&panic_payload);
            panic!(
                "proptest {kind} panicked (seed {seed}, recorded in {}):\n{msg}",
                regression_path.display()
            );
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn regression_file(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Reads persisted seeds for `test_name`. Lines look like
/// `cc 1234567890 # test_name`; lines without a name are replayed by every
/// test in the file.
fn load_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            let (seed_text, comment) = match rest.split_once('#') {
                Some((s, c)) => (s.trim(), Some(c.trim())),
                None => (rest.trim(), None),
            };
            let seed: u64 = seed_text.parse().ok()?;
            match comment {
                Some(name) if !name.is_empty() && name != test_name => None,
                _ => Some(seed),
            }
        })
        .collect()
}

fn persist_seed(path: &Path, test_name: &str, seed: u64) {
    // Cargo runs a binary's tests on parallel threads; serialize the
    // read-modify-write so two failing properties in one file can't drop
    // each other's seed. (Distinct test binaries write distinct files.)
    static WRITE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = WRITE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if load_seeds(path, test_name).contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let mut text = fs::read_to_string(path).unwrap_or_else(|_| {
        "# Seeds for failing proptest cases, replayed before fresh cases.\n\
         # Format: `cc <seed> # <test name>`. Commit this file.\n"
            .to_string()
    });
    if !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&format!("cc {seed} # {test_name}\n"));
    let _ = fs::write(path, text);
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_round_trip_through_the_regression_file() {
        let dir = std::env::temp_dir().join("proptest-stub-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("props.txt");
        persist_seed(&path, "my_test", 42);
        persist_seed(&path, "my_test", 42); // duplicate is not re-added
        persist_seed(&path, "other_test", 7);
        assert_eq!(load_seeds(&path, "my_test"), vec![42]);
        assert_eq!(load_seeds(&path, "other_test"), vec![7]);
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("cc 42").count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_rng_per_seed() {
        use rand::{Rng, RngCore};
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        assert_eq!(a.rng().gen_range(0i64..100), b.rng().gen_range(0i64..100));
    }
}
