//! A small, dependency-free stand-in for `proptest`.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate implements the subset of the proptest API this workspace's property
//! suites use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and tuples, plus [`collection::vec`] and [`strategy::Just`];
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`;
//! * deterministic per-case seeds, a `PROPTEST_CASES` env override, and
//!   failing-seed persistence under `proptest-regressions/` (replayed first
//!   on the next run), mirroring real proptest's workflow.
//!
//! There is no shrinking: a failure reports the seed that produced it, and
//! that exact case is replayed from the regression file until fixed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access to strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_cfg = $cfg;
                $crate::test_runner::run(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                    &__proptest_cfg,
                    |__proptest_rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::gen(
                                &($strat),
                                __proptest_rng,
                            );
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the current case (with its
/// seed recorded) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), left, right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), left,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
