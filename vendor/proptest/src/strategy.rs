//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of a type from a seeded RNG.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG state, and failures are
/// reproduced by replaying the failing seed.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
