//! A small, dependency-free stand-in for `serde_json`.
//!
//! Serializes the vendored serde's [`Value`] model to JSON text and parses
//! JSON text back. Covers [`to_string`], [`to_string_pretty`] and
//! [`from_str`] — the functions this workspace uses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize, Value};

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as compact JSON appended to `out`, reusing the
/// buffer's existing capacity. `out` is not cleared first — callers that
/// want a fresh string clear it themselves, which lets one buffer serve
/// many serializations without reallocating.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    write_value(out, &value.to_value(), None, 0);
    Ok(())
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` out of JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, level, ('[', ']'), write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            level,
            ('{', '}'),
            |out, (k, v), indent, level| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` on f64 prints the shortest representation that round-trips,
        // but drops the decimal point for integral values; restore it so the
        // value parses back as a float.
        let text = f.to_string();
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; mirror serde_json by emitting null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must be followed by
                                // `\uDC00`-`\uDFFF`; combine the pair.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate in \\u escape"));
                                }
                                self.pos += 2; // step onto the `u` of the low escape
                                let low = self.hex_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate in \\u escape"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of unescaped bytes up to the
                    // next quote/backslash and validate it once — per-char
                    // validation of the remaining input is quadratic over
                    // the document.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape with `pos` on the
    /// `u`, leaving `pos` on the last hex digit.
    fn hex_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::I64(-3)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("x \"y\"\n".into())),
            ("d".into(), Value::Bool(true)),
        ]);
        let text = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        assert!(matches!(parse_value(&text).unwrap(), Value::F64(_)));
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        assert_eq!(
            parse_value("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".into()),
            "escaped surrogate pair combines"
        );
        assert_eq!(
            parse_value(r#""😀""#).unwrap(),
            Value::Str("\u{1F600}".into()),
            "raw UTF-8 passes through"
        );
        assert!(
            parse_value(r#""\ud83d""#).is_err(),
            "unpaired high surrogate"
        );
        assert!(
            parse_value(r#""\ud83dA""#).is_err(),
            "high surrogate followed by non-surrogate"
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![(
            "xs".into(),
            Value::Array(vec![Value::I64(1), Value::I64(2)]),
        )]);
        let mut s = String::new();
        write_value(&mut s, &v, Some(2), 0);
        assert_eq!(parse_value(&s).unwrap(), v);
        assert!(s.contains('\n'));
    }
}
