//! A small, dependency-free stand-in for `criterion`.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate keeps the macro and builder surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`], `Bencher::iter`
//! — and implements them as a straightforward wall-clock harness: warm up,
//! run a fixed number of timed samples, report the per-iteration mean and
//! min. There are no statistics, plots, or baselines; swap in the real
//! criterion when a registry is available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the time budget for measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(self, &id.label(), &mut f);
    }
}

/// A named collection of benchmarks sharing the driver's settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label());
        run_bench(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label());
        run_bench(self.criterion, &label, &mut f);
        self
    }

    /// Ends the group. (No-op in this stand-in; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterised.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => format!("{}/{p}", self.function),
            Some(p) => p.clone(),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the sample budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(criterion: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm up and estimate the per-iteration cost.
    let mut iters = 1u64;
    let warm_up_end = Instant::now() + criterion.warm_up_time;
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.checked_div(iters as u32).unwrap_or(per_iter);
        if Instant::now() >= warm_up_end {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 20);
    }

    // Pick an iteration count so all samples fit the measurement budget.
    let budget_per_sample = criterion.measurement_time / criterion.sample_size as u32;
    let per_iter_nanos = per_iter.as_nanos().max(1);
    let iters = (budget_per_sample.as_nanos() / per_iter_nanos).clamp(1, 1 << 24) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench: {label:<60} mean {:>12} min {:>12} ({} iters x {} samples)",
        format_duration(mean),
        format_duration(min),
        iters,
        samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_tiny_bench_end_to_end() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("free", |b| b.iter(|| 2 * 2));
    }
}
