//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented with a hand-rolled token walk (no `syn`/`quote` — the build
//! environment has no registry access). Supports exactly the item shapes
//! this workspace derives on:
//!
//! * structs with named fields, newtype/tuple structs;
//! * enums with unit and tuple variants;
//! * generic type parameters (bounds are added per derived trait);
//! * the container attributes `#[serde(try_from = "T")]` and
//!   `#[serde(into = "T")]`.
//!
//! Serialization targets the vendored serde's single concrete data model
//! (`serde::Value`); objects are field-name keyed, unit variants are
//! strings, and tuple variants are externally tagged single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<(String, usize)> },
}

struct Item {
    name: String,
    generics: Vec<String>,
    try_from: Option<String>,
    into: Option<String>,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let mut try_from = None;
    let mut into = None;

    // Leading attributes (doc comments, #[serde(...)], etc.).
    while matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(pos + 1) {
            parse_serde_attr(g.stream(), &mut try_from, &mut into);
        }
        pos += 2;
    }

    skip_visibility(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    pos += 1;

    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    pos += 1;

    let generics = parse_generics(&tokens, &mut pos);

    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    arity: split_top_level(g.stream()).len(),
                }
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        try_from,
        into,
        shape,
    }
}

fn parse_serde_attr(attr: TokenStream, try_from: &mut Option<String>, into: &mut Option<String>) {
    // The attribute group content is e.g. `serde(try_from = "Raw", into = "Raw")`.
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = tokens.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        if let TokenTree::Ident(key) = &inner[i] {
            let key = key.to_string();
            if matches!(&inner.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                    let text = lit.to_string();
                    let text = text.trim_matches('"').to_string();
                    match key.as_str() {
                        "try_from" => *try_from = Some(text),
                        "into" => *into = Some(text),
                        other => panic!("unsupported serde attribute `{other}` (vendored serde)"),
                    }
                    i += 3;
                    if matches!(&inner.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        i += 1;
                    }
                    continue;
                }
            }
            panic!("unsupported serde attribute form (vendored serde)");
        }
        i += 1;
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Parses `<A, B: Bound, C = Default>` starting at `pos`, returning the
/// parameter names and leaving `pos` one past the closing `>`.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *pos += 1;
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime parameter: consume the following ident as part of
                // the lifetime, not as a type parameter.
                *pos += 1;
                expect_param = false;
            }
            TokenTree::Ident(i) if expect_param && depth == 1 => {
                params.push(i.to_string());
                expect_param = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    panic!("unbalanced generics in derive input");
}

/// Splits a token stream on top-level commas (commas not nested inside
/// `<...>`; bracketed groups are single tokens already).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth = 0usize;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut pos = 0;
            while matches!(field.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                pos += 2;
            }
            skip_visibility(&field, &mut pos);
            match field.get(pos) {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, usize)> {
    split_top_level(stream)
        .into_iter()
        .map(|variant| {
            let mut pos = 0;
            while matches!(variant.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                pos += 2;
            }
            let name = match variant.get(pos) {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let arity = match variant.get(pos + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    split_top_level(g.stream()).len()
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    panic!("struct-like enum variants are not supported by the vendored serde")
                }
                _ => 0,
            };
            (name, arity)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

impl Item {
    /// `Name` or `Name<T, U>`.
    fn ty(&self) -> String {
        if self.generics.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generics.join(", "))
        }
    }

    /// `impl` generics with the given bound, e.g. `<T: ::serde::Serialize>`.
    fn impl_generics(&self, bound: &str) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            let params: Vec<String> = self
                .generics
                .iter()
                .map(|p| format!("{p}: {bound}"))
                .collect();
            format!("<{}>", params.join(", "))
        }
    }
}

fn render_serialize(item: &Item) -> String {
    let ty = item.ty();
    let generics = item.impl_generics("::serde::Serialize");

    let body = if let Some(into) = &item.into {
        format!(
            "let raw: {into} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&raw)"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct { fields } => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::TupleStruct { arity } => {
                let entries: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
            }
            Shape::UnitStruct => "::serde::Value::Null".to_string(),
            Shape::Enum { variants } => {
                let name = &item.name;
                let arms: Vec<String> = variants
                    .iter()
                    .map(|(v, arity)| match arity {
                        0 => format!(
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                        ),
                        1 => format!(
                            "{name}::{v}(x0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(x0))])"
                        ),
                        n => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(",\n"))
            }
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn render_deserialize(item: &Item) -> String {
    let ty = item.ty();
    let generics = item.impl_generics("::serde::Deserialize");
    let name = &item.name;

    let body = if let Some(try_from) = &item.try_from {
        format!(
            "let raw: {try_from} = ::serde::Deserialize::from_value(v)?;\n\
             ::core::convert::TryFrom::try_from(raw)\n\
                 .map_err(|e| ::serde::DeError::custom(::std::format!(\"{{e}}\")))"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct { fields } => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: match v.get(\"{f}\") {{\n\
                                 Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                                 None => return ::core::result::Result::Err(\
                                     ::serde::DeError::custom(\
                                     \"missing field `{f}` in {name}\")),\n\
                             }}"
                        )
                    })
                    .collect();
                format!(
                    "if !::core::matches!(v, ::serde::Value::Object(_)) {{\n\
                         return ::core::result::Result::Err(::serde::DeError::custom(\n\
                             ::std::format!(\"expected object for {name}, found {{}}\", v.kind())));\n\
                     }}\n\
                     ::core::result::Result::Ok(Self {{ {} }})",
                    inits.join(",\n")
                )
            }
            Shape::TupleStruct { arity: 1 } => {
                "::core::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
            }
            Shape::TupleStruct { arity } => {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])"))
                    .map(|e| format!("{e}?"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Array(items) if items.len() == {arity} =>\n\
                             ::core::result::Result::Ok(Self({})),\n\
                         other => ::core::result::Result::Err(::serde::DeError::custom(\n\
                             ::std::format!(\"expected {arity}-element array for {name}, found {{}}\", other.kind()))),\n\
                     }}",
                    inits.join(", ")
                )
            }
            Shape::UnitStruct => "::core::result::Result::Ok(Self)".to_string(),
            Shape::Enum { variants } => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|(_, arity)| *arity == 0)
                    .map(|(v, _)| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v})"))
                    .collect();
                let payload_arms: Vec<String> = variants
                    .iter()
                    .filter(|(_, arity)| *arity > 0)
                    .map(|(v, arity)| match arity {
                        1 => format!(
                            "\"{v}\" => ::core::result::Result::Ok(\
                             {name}::{v}(::serde::Deserialize::from_value(pv)?))"
                        ),
                        n => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "\"{v}\" => match pv {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} =>\n\
                                         ::core::result::Result::Ok({name}::{v}({})),\n\
                                     other => ::core::result::Result::Err(::serde::DeError::custom(\n\
                                         ::std::format!(\"expected {n}-element array for {name}::{v}, found {{}}\", other.kind()))),\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    })
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Str(s) => match s.as_str() {{\n\
                             {unit_arms}\n\
                             other => ::core::result::Result::Err(::serde::DeError::custom(\n\
                                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }},\n\
                         ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                             let (k, pv) = &entries[0];\n\
                             match k.as_str() {{\n\
                                 {payload_arms}\n\
                                 other => ::core::result::Result::Err(::serde::DeError::custom(\n\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }}\n\
                         }}\n\
                         other => ::core::result::Result::Err(::serde::DeError::custom(\n\
                             ::std::format!(\"expected variant of {name}, found {{}}\", other.kind()))),\n\
                     }}",
                    unit_arms = if unit_arms.is_empty() {
                        String::new()
                    } else {
                        format!("{},", unit_arms.join(",\n"))
                    },
                    payload_arms = if payload_arms.is_empty() {
                        String::new()
                    } else {
                        format!("{},", payload_arms.join(",\n"))
                    },
                )
            }
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
