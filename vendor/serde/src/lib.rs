//! A small, dependency-free stand-in for `serde`.
//!
//! The build environment has no crates-registry access, so this vendored
//! crate replaces serde's generic data model with a single concrete one: a
//! JSON-like [`value::Value`] tree. [`Serialize`] renders into it,
//! [`Deserialize`] reads back out of it, and the companion `serde_derive`
//! proc-macro derives both for the struct/enum shapes used in this
//! workspace (named-field structs, unit and newtype enum variants, and the
//! `#[serde(try_from = "...", into = "...")]` container attributes).
//!
//! `serde_json` (also vendored) supplies the text format on top.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// An error produced while deserializing a [`Value`] into a typed structure.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value of this type out of `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                // Strictly integer-typed: a float in an integer position is
                // rejected even when its value is integral (`7.0` used to
                // coerce silently through `Value::as_i64` — a correctness
                // hazard once untrusted files are deserialized).
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        DeError::custom(format!(
                            "integer {n} out of range for {}",
                            stringify!($t)
                        ))
                    })?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::U64(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U64(n) => Ok(*n),
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            other => Err(DeError::custom(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            // Beyond u64 JSON numbers lose exactness anyway; keep magnitude.
            Err(_) => Value::F64(*self as f64),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected {expected}-tuple, found array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected array, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_positions_reject_floats_even_when_integral() {
        for float in [Value::F64(7.0), Value::F64(0.5)] {
            let err = i64::from_value(&float).unwrap_err();
            assert!(err.to_string().contains("expected integer"), "{err}");
            let err = usize::from_value(&float).unwrap_err();
            assert!(err.to_string().contains("expected integer"), "{err}");
        }
        assert_eq!(i64::from_value(&Value::I64(7)).unwrap(), 7);
        assert_eq!(usize::from_value(&Value::U64(7)).unwrap(), 7);
    }

    #[test]
    fn u64_rejects_negatives_and_floats() {
        assert!(u64::from_value(&Value::I64(-3)).is_err());
        assert!(u64::from_value(&Value::F64(3.0)).is_err());
        assert_eq!(u64::from_value(&Value::U64(u64::MAX)).unwrap(), u64::MAX);
    }
}
