//! The [`Value`] tree — the single concrete data model this vendored serde
//! serializes into and deserializes out of.

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `I64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Reads the value as an `i64` if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => Some(*f as i64),
            _ => None,
        }
    }

    /// Reads the value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Reads the value as a string slice if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

// A `Value` is its own serialization — this is what lets callers parse
// arbitrary JSON first (`serde_json::from_str::<Value>`) and pick it apart
// by hand, the stand-in for real serde's `deserialize_any`.
impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, crate::DeError> {
        Ok(v.clone())
    }
}
