//! A small, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this vendored
//! crate implements exactly the subset of the `rand 0.8` API the workspace
//! uses: [`RngCore`], [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen`] for `f64`/`bool`, [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`] built on xoshiro256++ seeded via SplitMix64.
//!
//! It is API-compatible for the call sites in this repository only; swap in
//! the real `rand` crate when a registry is available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience methods for generating typed random values.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`. Panics on an empty range,
    /// matching the real `rand` behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Draws a value from the "standard" distribution of `T`:
    /// `f64` uniform in `[0, 1)`, `bool` fair coin, integers full-range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// distinct `state` values give well-separated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range; panics if it is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` uniformly from `[0, bound)` using Lemire's widening
/// multiply, which avoids modulo bias without rejection in practice for
/// the small bounds used here.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= u64::MAX - u64::MAX % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Types with a uniform sampler over half-open / closed intervals. The
/// generic [`SampleRange`] impls below are written over this trait (rather
/// than per concrete range type) so that integer-literal ranges unify with
/// the call site's expected type, exactly as with the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`
    /// (`inclusive == true`). The bounds are already checked non-empty.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span > u64::MAX as u128 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        let u = if inclusive {
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        } else {
            f64::sample_standard(rng)
        };
        let v = lo + u * (hi - lo);
        // `lo + u*(hi - lo)` can round up to exactly `hi` even for u < 1;
        // keep the half-open contract by stepping just inside the bound.
        if !inclusive && v >= hi {
            hi.next_down().max(lo)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_interval(rng, f64::from(lo), f64::from(hi), inclusive) as f32
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_interval(rng, lo, hi, true)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn int_ranges_hit_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
