//! Integration tests for `flexctl measure --portfolio`: the engine-backed
//! batch path, its JSON output, and every documented error path (empty
//! portfolio, malformed JSON, zero-thread request, unknown measure).

use std::io::Write;
use std::process::{Command, Output, Stdio};

use serde::Deserialize;

/// Typed mirror of the `--json` report (the vendored `serde_json` has no
/// dynamic `Value`; typed deserialisation doubles as a schema check). The
/// mirror is deliberately timing- and budget-free so equal portfolios
/// serialise to equal bytes at any thread and shard count.
#[derive(Debug, Deserialize)]
struct JsonReport {
    offers: usize,
    measures: Vec<JsonMeasure>,
}

#[derive(Debug, Deserialize, PartialEq)]
struct JsonMeasure {
    measure: String,
    value: Option<f64>,
    error: Option<String>,
    evaluated: usize,
    failed: usize,
    min: Option<f64>,
    max: Option<f64>,
}

const ALL_EIGHT_MEASURES: [&str; 8] = [
    "Time",
    "Energy",
    "Product",
    "Vector",
    "Time-series",
    "Assignments",
    "Abs. Area",
    "Rel. Area",
];

fn flexctl(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("flexctl spawns");
    if let Some(input) = stdin {
        // The child may exit before draining stdin (e.g. a flag error like
        // `--threads 0` is rejected before any input is read), so a broken
        // pipe here is expected; the assertions run on status and output.
        let _ = child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes());
    }
    child.wait_with_output().expect("flexctl terminates")
}

fn portfolio_template() -> String {
    let out = flexctl(&["template", "--portfolio"], None);
    assert!(out.status.success(), "flexctl template --portfolio exits 0");
    String::from_utf8(out.stdout).expect("template output is UTF-8")
}

#[test]
fn portfolio_measure_reports_all_eight_measures() {
    let template = portfolio_template();
    let out = flexctl(&["measure", "--portfolio", "-"], Some(&template));
    assert!(
        out.status.success(),
        "measure --portfolio exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("output is UTF-8");
    assert!(stdout.contains("offers"), "header line present:\n{stdout}");
    for name in ALL_EIGHT_MEASURES {
        assert!(stdout.contains(name), "output missing {name:?}:\n{stdout}");
    }
}

#[test]
fn portfolio_measure_accepts_a_bare_offer_array() {
    let template = portfolio_template();
    let portfolio: flexoffers::Portfolio =
        serde_json::from_str(&template).expect("template parses as a portfolio");
    let bare = serde_json::to_string(&portfolio.into_offers()).expect("offers array re-serialises");
    let out = flexctl(&["measure", "--portfolio", "-"], Some(&bare));
    assert!(
        out.status.success(),
        "bare array accepted; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn portfolio_json_output_is_byte_identical_across_thread_counts() {
    let template = portfolio_template();
    let json = |threads: &str| -> String {
        let out = flexctl(
            &[
                "measure",
                "--portfolio",
                "-",
                "--json",
                "--threads",
                threads,
            ],
            Some(&template),
        );
        assert!(
            out.status.success(),
            "measure --portfolio --json --threads {threads} exits 0; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("UTF-8")
    };
    // The JSON mirror excludes every budget and wall-clock field, so the
    // whole document is byte-comparable.
    let one = json("1");
    assert_eq!(one, json("8"));

    let report: JsonReport = serde_json::from_str(&one).expect("--json output parses");
    assert!(report.offers > 0);
    assert_eq!(report.measures.len(), 8);
    let time = &report.measures[0];
    assert_eq!(time.measure, "Time");
    assert!(time.value.is_some() && time.error.is_none());
    assert_eq!(time.evaluated + time.failed, report.offers);
    assert!(time.min.is_some() && time.max.is_some());
    assert!(!one.contains("threads"), "mirror must stay budget-free");
    assert!(!one.contains("elapsed"), "mirror must stay wall-clock-free");
}

#[test]
fn portfolio_measure_honours_a_measure_subset() {
    let template = portfolio_template();
    let out = flexctl(
        &["measure", "--portfolio", "-", "time", "energy"],
        Some(&template),
    );
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("UTF-8");
    assert!(stdout.contains("Time"));
    assert!(stdout.contains("Energy"));
    assert!(!stdout.contains("Assignments"));
}

#[test]
fn empty_portfolio_is_rejected() {
    for empty in [r#"{"offers": []}"#, "[]"] {
        let out = flexctl(&["measure", "--portfolio", "-"], Some(empty));
        assert!(!out.status.success(), "empty portfolio {empty:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            stderr.contains("empty portfolio"),
            "stderr names the problem: {stderr}"
        );
    }
}

#[test]
fn malformed_json_is_rejected() {
    let out = flexctl(&["measure", "--portfolio", "-"], Some("{not json"));
    assert!(!out.status.success(), "bad JSON must fail");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        stderr.contains("parsing portfolio JSON"),
        "stderr names the problem: {stderr}"
    );
}

#[test]
fn zero_threads_is_rejected() {
    let template = portfolio_template();
    let out = flexctl(
        &["measure", "--portfolio", "-", "--threads", "0"],
        Some(&template),
    );
    assert!(!out.status.success(), "--threads 0 must fail");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        stderr.contains("thread count must be at least 1"),
        "stderr names the problem: {stderr}"
    );
    let non_numeric = flexctl(
        &["measure", "--portfolio", "-", "--threads", "many"],
        Some(&template),
    );
    assert!(!non_numeric.status.success(), "--threads many must fail");
}

#[test]
fn unknown_measure_is_rejected() {
    let template = portfolio_template();
    let out = flexctl(&["measure", "--portfolio", "-", "entropy"], Some(&template));
    assert!(!out.status.success(), "unknown measure must fail");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("unknown measure"), "stderr: {stderr}");
}
