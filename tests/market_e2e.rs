//! Cross-crate market pipeline: populations -> aggregator -> spot market ->
//! settlement, exercising the lot rule, the overestimation imbalance and
//! the measure correlations.

use flexoffers::market::{measure_savings_correlation, Aggregator, SpotMarket};
use flexoffers::workloads::price::{price_trace, PriceTraceConfig};
use flexoffers::workloads::PopulationBuilder;
use flexoffers::{GroupingParams, Portfolio};

fn market() -> SpotMarket {
    SpotMarket::new(
        price_trace(&PriceTraceConfig {
            days: 2,
            ..PriceTraceConfig::default()
        }),
        2.0,
    )
    .unwrap()
}

fn household_portfolio(seed: u64, scale: usize) -> Portfolio {
    PopulationBuilder::new(seed)
        .electric_vehicles(6 * scale)
        .dishwashers(8 * scale)
        .heat_pumps(4 * scale)
        .build()
}

#[test]
fn aggregation_unlocks_the_market() {
    let portfolio = household_portfolio(1, 2);
    let m = market();
    let strict = Aggregator::new(GroupingParams::strict(), 200).run(&portfolio, &m);
    let tolerant = Aggregator::new(GroupingParams::with_tolerances(4, 4), 200).run(&portfolio, &m);
    // Strict grouping leaves lots too small; tolerant grouping trades more.
    assert!(tolerant.orders.len() >= strict.orders.len());
    assert!(tolerant.rejected_lots <= strict.rejected_lots);
    assert!(tolerant.total_cost() <= strict.total_cost());
}

#[test]
fn flexible_trading_saves_against_the_baseline() {
    let portfolio = household_portfolio(2, 2);
    let outcome =
        Aggregator::new(GroupingParams::with_tolerances(3, 3), 25).run(&portfolio, &market());
    assert!(outcome.savings() > 0.0, "{outcome:?}");
    assert_eq!(
        outcome.imbalance_cost, 0.0,
        "safe planning has no imbalance"
    );
}

#[test]
fn naive_planning_never_beats_safe_planning() {
    let portfolio = household_portfolio(3, 2);
    let m = market();
    for params in [
        GroupingParams::with_tolerances(2, 2),
        GroupingParams::with_tolerances(6, 6),
        GroupingParams::single_group(),
    ] {
        let safe = Aggregator::new(params, 25).run(&portfolio, &m);
        let naive = Aggregator::naive(params, 25).run(&portfolio, &m);
        assert!(safe.total_cost() <= naive.total_cost() + 1e-9);
    }
}

#[test]
fn correlations_cover_all_measures_on_clean_portfolios() {
    let portfolios: Vec<Portfolio> = (0..5)
        .map(|s| household_portfolio(s, 1 + s as usize % 3))
        .collect();
    let aggregator = Aggregator::new(GroupingParams::with_tolerances(3, 3), 25);
    let m = market();
    let engine = flexoffers::Engine::detected();
    let savings: Vec<f64> = portfolios
        .iter()
        .map(|p| engine.trade_portfolio(p, &aggregator, &m).outcome.savings())
        .collect();
    let correlations = measure_savings_correlation(&portfolios, &savings);
    assert_eq!(savings.len(), 5);
    assert_eq!(correlations.len(), 8);
    for c in &correlations {
        assert_eq!(c.evaluated, 5, "{} failed on some portfolio", c.measure);
    }
}
