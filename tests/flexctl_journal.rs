//! Integration tests for `flexctl serve --journal` / `flexctl recover`:
//! a journaled serve run must answer byte-identically to a memory-only
//! one, the journal it writes must itself be a replayable serve script,
//! recovery after a kill (journal truncation) must byte-match the batch
//! oracle over the surviving prefix, and the documented flag errors
//! (`--journal` with `--batch`, snapshot knobs without a journal, missing
//! `--journal` path) must be rejected with named messages.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

fn flexctl(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("flexctl spawns");
    if let Some(input) = stdin {
        // The child may reject flags before reading stdin; broken pipe ok.
        let _ = child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes());
    }
    child.wait_with_output().expect("flexctl terminates")
}

fn stdout_of(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(
        out.status.success(),
        "flexctl {args:?} exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("output is UTF-8")
}

fn stderr_of_failure(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(!out.status.success(), "flexctl {args:?} must fail");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Scratch dir under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scratch_dir(tag: &str) -> ScratchDir {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("flexctl_journal_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    ScratchDir(dir)
}

/// A small city script with churn and all four query kinds.
fn script() -> String {
    stdout_of(
        &["events", "--city", "120", "--churn", "10", "--queries", "8"],
        None,
    )
}

fn path_str(path: &Path) -> &str {
    path.to_str().expect("scratch paths are UTF-8")
}

#[test]
fn journaled_serve_answers_like_batch_and_writes_a_replayable_script() {
    let dir = scratch_dir("replayable");
    let journal = dir.join("events.journal");
    let script = script();

    let journaled = stdout_of(
        &[
            "serve",
            "--script",
            "-",
            "--journal",
            path_str(&journal),
            "--snapshot-every",
            "64",
        ],
        Some(&script),
    );
    let batch = stdout_of(&["serve", "--script", "-", "--batch"], Some(&script));
    assert_eq!(journaled, batch, "journaling must not change any answer");

    // The journal is mutations-only (queries are not journaled) and is
    // itself a valid serve script: replaying it through --batch with the
    // four query kinds appended reproduces the final answers.
    let journal_text = std::fs::read_to_string(&journal).expect("journal written");
    assert!(
        !journal_text.contains("\"event\":\"query\""),
        "queries must not be journaled"
    );
    let mutations = script
        .lines()
        .filter(|l| !l.contains("\"event\":\"query\""))
        .count();
    assert_eq!(journal_text.lines().count(), mutations);

    let mut replay = journal_text.clone();
    for kind in ["measure", "aggregate", "schedule", "trade"] {
        replay.push_str(&format!("{{\"event\":\"query\",\"kind\":\"{kind}\"}}\n"));
    }
    let from_journal = stdout_of(&["serve", "--script", "-", "--batch"], Some(&replay));
    let recovered = stdout_of(&["recover", "--journal", path_str(&journal)], None);
    assert_eq!(
        recovered, from_journal,
        "recover == batch replay of the journal"
    );

    // The shutdown snapshot landed next to the journal, and recovery used
    // it (replayed 0 on a cleanly finished run).
    assert!(journal.with_extension("journal.snap").exists());
    let out = flexctl(&["recover", "--journal", path_str(&journal)], None);
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(
        summary.contains("replayed 0"),
        "clean shutdown snapshot should satisfy recovery, got: {summary}"
    );
}

#[test]
fn recovery_after_a_kill_matches_the_batch_oracle_on_the_surviving_prefix() {
    let dir = scratch_dir("kill");
    let journal = dir.join("events.journal");
    let script = script();

    // Serve with per-event fsync so the journal holds every mutation,
    // then simulate a kill by truncating it mid-stream, mid-line.
    stdout_of(
        &[
            "serve",
            "--script",
            "-",
            "--journal",
            path_str(&journal),
            "--sync-every",
            "1",
        ],
        Some(&script),
    );
    let whole = std::fs::read(&journal).expect("journal written");
    let keep_lines = whole.iter().filter(|&&b| b == b'\n').count() * 3 / 5;
    let committed: usize = String::from_utf8(whole.clone())
        .unwrap()
        .lines()
        .take(keep_lines)
        .map(|l| l.len() + 1)
        .sum();
    // Cut 17 bytes into the following line: a torn tail recovery drops.
    std::fs::write(&journal, &whole[..committed + 17]).expect("truncate");
    // The stale shutdown snapshot is ahead of the cut; recovery must fall
    // back to full replay rather than trusting it.
    let out = flexctl(&["recover", "--journal", path_str(&journal)], None);
    assert!(out.status.success(), "recovery after kill succeeds");
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("torn tail dropped"), "{summary}");
    let recovered = String::from_utf8(out.stdout).unwrap();

    // Oracle: the surviving complete lines + the four queries, through
    // the from-scratch batch path.
    let mut prefix = String::from_utf8(whole[..committed].to_vec()).unwrap();
    for kind in ["measure", "aggregate", "schedule", "trade"] {
        prefix.push_str(&format!("{{\"event\":\"query\",\"kind\":\"{kind}\"}}\n"));
    }
    let oracle = stdout_of(&["serve", "--script", "-", "--batch"], Some(&prefix));
    assert_eq!(recovered, oracle, "recovery == batch oracle on the prefix");
}

#[test]
fn a_journaled_serve_can_resume_where_the_last_run_stopped() {
    let dir = scratch_dir("resume");
    let journal = dir.join("events.journal");
    let script = script();
    let (first_half, second_half) = {
        let lines: Vec<&str> = script.lines().collect();
        let mid = lines.len() / 2;
        (
            lines[..mid]
                .iter()
                .map(|l| format!("{l}\n"))
                .collect::<String>(),
            lines[mid..]
                .iter()
                .map(|l| format!("{l}\n"))
                .collect::<String>(),
        )
    };

    stdout_of(
        &["serve", "--script", "-", "--journal", path_str(&journal)],
        Some(&first_half),
    );
    let out = flexctl(
        &["serve", "--script", "-", "--journal", path_str(&journal)],
        Some(&second_half),
    );
    assert!(out.status.success(), "resume serve succeeds");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resumed journal at seq"),
        "resume is announced on stderr"
    );

    // After both runs the journal holds the full mutation history:
    // recovery answers exactly like one uninterrupted batch replay.
    let recovered = stdout_of(&["recover", "--journal", path_str(&journal)], None);
    let mut full = script
        .lines()
        .filter(|l| !l.contains("\"event\":\"query\""))
        .map(|l| format!("{l}\n"))
        .collect::<String>();
    for kind in ["measure", "aggregate", "schedule", "trade"] {
        full.push_str(&format!("{{\"event\":\"query\",\"kind\":\"{kind}\"}}\n"));
    }
    let oracle = stdout_of(&["serve", "--script", "-", "--batch"], Some(&full));
    assert_eq!(recovered, oracle);
}

#[test]
fn durability_flag_misuse_is_rejected_with_named_errors() {
    let dir = scratch_dir("flags");
    let journal = dir.join("events.journal");

    let err = stderr_of_failure(
        &[
            "serve",
            "--script",
            "-",
            "--batch",
            "--journal",
            path_str(&journal),
        ],
        Some(""),
    );
    assert!(err.contains("--journal does not apply to --batch"), "{err}");

    let err = stderr_of_failure(
        &["serve", "--script", "-", "--snapshot-every", "8"],
        Some(""),
    );
    assert!(err.contains("need --journal"), "{err}");

    let err = stderr_of_failure(&["recover"], None);
    assert!(err.contains("recover needs --journal"), "{err}");

    let err = stderr_of_failure(&["serve", "--script", "-", "--journal"], Some(""));
    assert!(err.contains("--journal needs a path"), "{err}");

    // A corrupt snapshot is a named error, not a panic.
    std::fs::write(&journal, "{\"event\":\"query\",\"kind\":\"measure\"}\n").unwrap();
    std::fs::write(journal.with_extension("journal.snap"), "garbage\n{}\n").unwrap();
    let err = stderr_of_failure(&["recover", "--journal", path_str(&journal)], None);
    assert!(err.contains("corrupt snapshot"), "{err}");
}
