//! Cross-crate scheduling: district demand against a renewable trace; more
//! flexibility must never schedule worse.

use flexoffers::scheduling::{
    imbalance::coverage, EarliestStartScheduler, GreedyScheduler, HillClimbScheduler, Scheduler,
};
use flexoffers::workloads::res::{res_production_trace, ResTraceConfig};
use flexoffers::workloads::PopulationBuilder;
use flexoffers::{FlexOffer, SchedulingProblem};

fn district_problem(seed: u64) -> SchedulingProblem {
    let portfolio = PopulationBuilder::new(seed)
        .electric_vehicles(10)
        .dishwashers(15)
        .heat_pumps(6)
        .refrigerators(20)
        .build();
    let res = res_production_trace(&ResTraceConfig {
        seed,
        days: 2,
        solar_capacity: 40,
        wind_capacity: 50,
    });
    SchedulingProblem::new(portfolio.into_offers(), res)
}

#[test]
fn flexibility_beats_the_baseline_on_real_workloads() {
    let problem = district_problem(3);
    let target = problem.target();
    let base = EarliestStartScheduler.schedule(&problem).unwrap();
    let greedy = GreedyScheduler::new().schedule(&problem).unwrap();
    let climbed = HillClimbScheduler::new(42, 800).schedule(&problem).unwrap();

    assert!(problem.is_feasible(&base));
    assert!(problem.is_feasible(&greedy));
    assert!(problem.is_feasible(&climbed));

    let b = base.imbalance(target).l2;
    let g = greedy.imbalance(target).l2;
    let c = climbed.imbalance(target).l2;
    assert!(
        g < b,
        "greedy {g} must beat baseline {b} on a flexible district"
    );
    assert!(c <= g + 1e-9, "hill-climbing never regresses from greedy");
}

#[test]
fn coverage_improves_with_scheduling() {
    let problem = district_problem(4);
    let base = EarliestStartScheduler.schedule(&problem).unwrap();
    let greedy = GreedyScheduler::new().schedule(&problem).unwrap();
    let base_cov = coverage(&base.load(), problem.target());
    let greedy_cov = coverage(&greedy.load(), problem.target());
    assert!(greedy_cov >= base_cov);
}

#[test]
fn widening_every_window_never_hurts_the_greedy_schedule() {
    let problem = district_problem(5);
    let widened: Vec<FlexOffer> = problem
        .offers()
        .iter()
        .map(|fo| {
            FlexOffer::with_totals(
                fo.earliest_start(),
                fo.latest_start() + 3,
                fo.slices().to_vec(),
                fo.total_min(),
                fo.total_max(),
            )
            .unwrap()
        })
        .collect();
    let wide_problem = SchedulingProblem::new(widened, problem.target().clone());
    let tight = GreedyScheduler::new()
        .schedule(&problem)
        .unwrap()
        .imbalance(problem.target())
        .l2;
    // Greedy is a heuristic, so per-offer it can only do better with more
    // choices; across offers interactions could in principle hurt, so allow
    // a small tolerance while requiring no blow-up.
    let wide = GreedyScheduler::new()
        .schedule(&wide_problem)
        .unwrap()
        .imbalance(problem.target())
        .l2;
    assert!(wide <= tight * 1.05 + 1e-9, "wide {wide} vs tight {tight}");
}

#[test]
fn deterministic_schedules_under_seeds() {
    let problem = district_problem(6);
    let a = HillClimbScheduler::new(9, 200).schedule(&problem).unwrap();
    let b = HillClimbScheduler::new(9, 200).schedule(&problem).unwrap();
    assert_eq!(a, b);
}
