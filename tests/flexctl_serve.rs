//! Integration tests for `flexctl serve` / `flexctl events`: script
//! replay through the live serving loop must serialise byte-identically
//! to the from-scratch batch replay (`--batch`) at any shard count, the
//! generator must be deterministic, and the documented error paths
//! (malformed event line, remove of unknown id, empty script, `--shards
//! 0`) must be rejected with named messages. Also covers the unified
//! `simulate --city` alias.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn flexctl(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("flexctl spawns");
    if let Some(input) = stdin {
        // The child may exit before draining stdin (flag errors are
        // rejected before any input is read), so a broken pipe is fine.
        let _ = child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes());
    }
    child.wait_with_output().expect("flexctl terminates")
}

fn stdout_of(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(
        out.status.success(),
        "flexctl {args:?} exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("output is UTF-8")
}

fn stderr_of_failure(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(!out.status.success(), "flexctl {args:?} must fail");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A ~1k-offer script with 10% churn and all four query kinds — big
/// enough to spread offers across shards, small enough for a debug-build
/// test. (CI's smoke replays a 10k-offer script.)
fn script() -> String {
    stdout_of(
        &[
            "events",
            "--city",
            "300",
            "--churn",
            "10",
            "--queries",
            "8",
            "--seed",
            "11",
        ],
        None,
    )
}

#[test]
fn events_scripts_are_deterministic_and_self_describing() {
    let script = script();
    assert_eq!(script, script_again(), "same knobs, same bytes");
    assert_eq!(script.lines().count(), script.lines().count());
    let queries = script
        .lines()
        .filter(|l| l.contains("\"event\":\"query\""))
        .count();
    assert_eq!(queries, 8);
    for kind in ["measure", "aggregate", "schedule", "trade"] {
        assert!(
            script.contains(&format!("\"kind\":\"{kind}\"")),
            "missing {kind} query"
        );
    }
    assert!(script.contains("\"event\":\"update\""));
    assert!(script.contains("\"event\":\"remove\""));
}

fn script_again() -> String {
    stdout_of(
        &[
            "events",
            "--city",
            "300",
            "--churn",
            "10",
            "--queries",
            "8",
            "--seed",
            "11",
        ],
        None,
    )
}

#[test]
fn live_replay_is_byte_equal_to_batch_rebuild_at_any_shard_count() {
    let script = script();
    let batch = stdout_of(&["serve", "--script", "-", "--batch"], Some(&script));
    assert_eq!(
        batch.lines().count(),
        8,
        "one answer line per query:\n{batch}"
    );
    for shards in ["1", "4", "8"] {
        let live = stdout_of(
            &[
                "serve",
                "--script",
                "-",
                "--shards",
                shards,
                "--threads",
                "2",
            ],
            Some(&script),
        );
        assert_eq!(
            live, batch,
            "--shards {shards} live replay must match the batch rebuild byte for byte"
        );
    }
}

#[test]
fn serve_answers_carry_the_query_envelopes() {
    let script = script();
    let out = stdout_of(&["serve", "--script", "-", "--shards", "2"], Some(&script));
    for kind in ["measure", "aggregate", "schedule", "trade"] {
        assert!(
            out.contains(&format!("{{\"query\":\"{kind}\"")),
            "missing {kind} answer:\n{out}"
        );
    }
    // Scenario answers embed the deterministic scenario mirror.
    assert!(out.contains("\"imbalance_before\""), "{out}");
    assert!(out.contains("\"baseline_cost\""), "{out}");
}

#[test]
fn malformed_event_lines_are_rejected_with_their_line_number() {
    let script = "{\"event\":\"query\",\"kind\":\"measure\"}\nnot json\n";
    let stderr = stderr_of_failure(&["serve", "--script", "-"], Some(script));
    assert!(stderr.contains("line 2"), "stderr names the line: {stderr}");
}

#[test]
fn remove_of_unknown_id_is_rejected_before_replay() {
    let script = "{\"event\":\"remove\",\"id\":7}\n";
    let stderr = stderr_of_failure(&["serve", "--script", "-"], Some(script));
    assert!(
        stderr.contains("remove of unknown offer id 7"),
        "stderr: {stderr}"
    );
}

#[test]
fn empty_scripts_are_rejected() {
    for script in ["", "\n\n  \n"] {
        let stderr = stderr_of_failure(&["serve", "--script", "-"], Some(script));
        assert!(
            stderr.contains("empty script — no events"),
            "stderr: {stderr}"
        );
    }
}

#[test]
fn serve_flag_errors_are_named() {
    let stderr = stderr_of_failure(&["serve"], None);
    assert!(stderr.contains("serve needs --script"), "stderr: {stderr}");

    let script = "{\"event\":\"query\",\"kind\":\"measure\"}\n";
    let stderr = stderr_of_failure(&["serve", "--script", "-", "--shards", "0"], Some(script));
    assert!(
        stderr.contains("shard count must be at least 1"),
        "stderr: {stderr}"
    );
    let stderr = stderr_of_failure(
        &["serve", "--script", "-", "--shards", "many"],
        Some(script),
    );
    assert!(stderr.contains("takes a number"), "stderr: {stderr}");
    let stderr = stderr_of_failure(&["serve", "--script", "-", "--frobnicate"], Some(script));
    assert!(
        stderr.contains("unknown serve argument --frobnicate"),
        "stderr: {stderr}"
    );
    let stderr = stderr_of_failure(&["serve", "--script", "/no/such/file.jsonl"], None);
    assert!(stderr.contains("reading"), "stderr: {stderr}");

    // --shards is a live-replay knob; the batch oracle is the flat
    // engine, so combining them is rejected rather than silently ignored.
    let stderr = stderr_of_failure(
        &["serve", "--script", "-", "--batch", "--shards", "4"],
        Some(script),
    );
    assert!(
        stderr.contains("--shards does not apply to --batch"),
        "stderr: {stderr}"
    );
}

#[test]
fn events_survives_a_truncating_consumer() {
    // `flexctl events ... | head` closes the pipe early; the generator
    // must stop cleanly instead of panicking on EPIPE.
    use std::io::Read;
    let mut child = Command::new(env!("CARGO_BIN_EXE_flexctl"))
        .args(["events", "--city", "3000", "--churn", "10"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .stdin(Stdio::null())
        .spawn()
        .expect("flexctl spawns");
    // Read a few bytes, then drop the pipe while the child still writes.
    let mut stdout = child.stdout.take().expect("stdout piped");
    let mut buf = [0u8; 256];
    stdout.read_exact(&mut buf).expect("some output");
    drop(stdout);
    let out = child.wait_with_output().expect("flexctl terminates");
    assert!(
        out.status.success(),
        "closed pipe must not fail the generator; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("panicked"),
        "no panic on EPIPE"
    );
}

#[test]
fn events_flag_errors_are_named() {
    let stderr = stderr_of_failure(&["events"], None);
    assert!(stderr.contains("events needs --city"), "stderr: {stderr}");
    let stderr = stderr_of_failure(&["events", "--city", "10", "--churn", "250"], None);
    assert!(
        stderr.contains("between 0 and 100"),
        "stderr names the range: {stderr}"
    );
    let stderr = stderr_of_failure(&["events", "--city", "10", "--churn", "lots"], None);
    assert!(stderr.contains("takes a number"), "stderr: {stderr}");
    let stderr = stderr_of_failure(&["events", "--city", "ten"], None);
    assert!(stderr.contains("takes a number"), "stderr: {stderr}");
}

#[test]
fn an_unqueried_script_replays_silently() {
    let script = stdout_of(
        &["events", "--city", "20", "--churn", "5", "--queries", "0"],
        None,
    );
    assert!(!script.contains("\"event\":\"query\""));
    let out = stdout_of(&["serve", "--script", "-"], Some(&script));
    assert!(out.is_empty(), "no queries, no output:\n{out}");
}

#[test]
fn simulate_city_is_an_alias_of_households() {
    let by_households = stdout_of(
        &[
            "simulate",
            "--scenario",
            "market",
            "--households",
            "200",
            "--json",
        ],
        None,
    );
    let by_city = stdout_of(
        &[
            "simulate",
            "--scenario",
            "market",
            "--city",
            "200",
            "--json",
        ],
        None,
    );
    assert_eq!(by_households, by_city);

    let stderr = stderr_of_failure(
        &[
            "simulate",
            "--scenario",
            "market",
            "--city",
            "10",
            "--households",
            "10",
        ],
        None,
    );
    assert!(
        stderr.contains("--city and --households name the same knob"),
        "stderr: {stderr}"
    );
    let stderr = stderr_of_failure(&["simulate", "--scenario", "market", "--city", "ten"], None);
    assert!(stderr.contains("takes a number"), "stderr: {stderr}");
}
