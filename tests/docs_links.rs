//! Intra-repo link checker for the prose docs: every relative
//! `[text](path)` target in `README.md` and `docs/*.md` must exist in the
//! working tree (anchors and external URLs are out of scope). Keeps the
//! crate-map pointer in `README.md` and the cross-references between
//! `docs/PROTOCOL.md` and `docs/ARCHITECTURE.md` from rotting.

use std::path::{Path, PathBuf};

/// Extracts the `(target)` of every inline markdown link in `text`,
/// skipping images, external URLs, and pure-anchor links.
fn relative_link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // An inline link is `](target)`; images (`![alt](target)`) reuse
        // the same shape and are checked identically.
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(len) = text[start..].find(')') {
                let target = &text[start..start + len];
                let target = target.split('#').next().unwrap_or("");
                let external = target.contains("://") || target.starts_with("mailto:");
                if !target.is_empty() && !external {
                    targets.push(target.to_owned());
                }
                i = start + len;
            }
        }
        i += 1;
    }
    targets
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Checks every relative link in `doc` (a repo-root-relative markdown
/// file), resolving targets against the doc's own directory.
fn check_doc(doc: &Path, broken: &mut Vec<String>) {
    let text =
        std::fs::read_to_string(doc).unwrap_or_else(|e| panic!("reading {}: {e}", doc.display()));
    let base = doc.parent().expect("docs live in a directory");
    for target in relative_link_targets(&text) {
        let resolved = base.join(&target);
        if !resolved.exists() {
            broken.push(format!(
                "{} -> {target} (missing {})",
                doc.display(),
                resolved.display()
            ));
        }
    }
}

#[test]
fn intra_repo_doc_links_resolve() {
    let root = repo_root();
    let mut docs = vec![root.join("README.md")];
    let docs_dir = root.join("docs");
    assert!(
        docs_dir.is_dir(),
        "docs/ must exist (PROTOCOL.md and ARCHITECTURE.md live there)"
    );
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs_dir)
        .expect("docs/ is readable")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "md"))
        .collect();
    entries.sort();
    assert!(
        entries.iter().any(|p| p.ends_with("PROTOCOL.md")),
        "docs/PROTOCOL.md is the normative wire spec"
    );
    assert!(
        entries.iter().any(|p| p.ends_with("ARCHITECTURE.md")),
        "docs/ARCHITECTURE.md is the crate map"
    );
    docs.extend(entries);

    let mut broken = Vec::new();
    for doc in &docs {
        check_doc(doc, &mut broken);
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn link_extraction_understands_markdown() {
    let text = "see [spec](docs/PROTOCOL.md#framing), [ext](https://example.com/x.md), \
                ![img](fig.png), [anchor](#here), and [rel](../README.md).";
    assert_eq!(
        relative_link_targets(text),
        vec!["docs/PROTOCOL.md", "fig.png", "../README.md"]
    );
}
