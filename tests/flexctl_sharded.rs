//! Integration tests for `flexctl --shards`: the sharded book behind
//! `measure --portfolio` and `simulate` must serialise byte-identically to
//! the unsharded runs (at the 10k-offer scale the engine pipelines are
//! sized for), and the documented error paths (`--shards 0`, non-numeric
//! values) must be rejected with named messages.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn flexctl(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("flexctl spawns");
    if let Some(input) = stdin {
        // The child may exit before draining stdin (flag errors are
        // rejected before any input is read), so a broken pipe is fine.
        let _ = child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes());
    }
    child.wait_with_output().expect("flexctl terminates")
}

fn stdout_of(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(
        out.status.success(),
        "flexctl {args:?} exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("output is UTF-8")
}

fn stderr_of_failure(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(!out.status.success(), "flexctl {args:?} must fail");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// `city(seed 7, 2956 households)` is 10 003 offers — the 10k scale the
/// engine pipelines are sized for.
const CITY_10K: &str = "2956";

#[test]
fn sharded_city_measure_json_is_byte_equal_to_unsharded_at_10k_offers() {
    let unsharded = stdout_of(
        &["measure", "--portfolio", "--city", CITY_10K, "--json"],
        None,
    );
    assert!(
        unsharded.contains("\"offers\": 10003"),
        "city sizing drifted:\n{unsharded}"
    );
    for shards in ["1", "4", "8"] {
        let sharded = stdout_of(
            &[
                "measure",
                "--portfolio",
                "--city",
                CITY_10K,
                "--shards",
                shards,
                "--threads",
                "2",
                "--json",
            ],
            None,
        );
        assert_eq!(
            unsharded, sharded,
            "--shards {shards} must not change a single output byte"
        );
    }
}

#[test]
fn sharded_file_measure_json_is_byte_equal_to_unsharded() {
    let template = stdout_of(&["template", "--portfolio"], None);
    let unsharded = stdout_of(&["measure", "--portfolio", "-", "--json"], Some(&template));
    let sharded = stdout_of(
        &["measure", "--portfolio", "-", "--shards", "3", "--json"],
        Some(&template),
    );
    assert_eq!(unsharded, sharded);
}

#[test]
fn sharded_simulate_json_is_byte_equal_to_unsharded_at_10k_offers() {
    for scenario in ["schedule", "market"] {
        let unsharded = stdout_of(
            &[
                "simulate",
                "--scenario",
                scenario,
                "--households",
                CITY_10K,
                "--json",
            ],
            None,
        );
        for shards in ["1", "4"] {
            let sharded = stdout_of(
                &[
                    "simulate",
                    "--scenario",
                    scenario,
                    "--households",
                    CITY_10K,
                    "--shards",
                    shards,
                    "--threads",
                    "2",
                    "--json",
                ],
                None,
            );
            assert_eq!(
                unsharded, sharded,
                "{scenario} --shards {shards} must not change a single output byte"
            );
        }
    }
}

#[test]
fn sharded_measure_text_report_still_renders() {
    let out = stdout_of(
        &["measure", "--portfolio", "--city", "30", "--shards", "4"],
        None,
    );
    assert!(out.contains("offers"), "header present:\n{out}");
    for name in ["Time", "Energy", "Assignments", "Rel. Area"] {
        assert!(out.contains(name), "missing {name:?}:\n{out}");
    }
}

#[test]
fn zero_shards_is_rejected_on_measure() {
    let template = stdout_of(&["template", "--portfolio"], None);
    for (args, stdin) in [
        (
            vec!["measure", "--portfolio", "-", "--shards", "0"],
            Some(template.as_str()),
        ),
        (
            vec!["measure", "--portfolio", "--city", "10", "--shards", "0"],
            None,
        ),
    ] {
        let stderr = stderr_of_failure(&args, stdin);
        assert!(
            stderr.contains("shard count must be at least 1"),
            "stderr names the problem: {stderr}"
        );
    }
}

#[test]
fn zero_shards_is_rejected_on_simulate() {
    let stderr = stderr_of_failure(&["simulate", "--scenario", "market", "--shards", "0"], None);
    assert!(
        stderr.contains("shard count must be at least 1"),
        "stderr names the problem: {stderr}"
    );
}

#[test]
fn non_numeric_shards_are_rejected() {
    let template = stdout_of(&["template", "--portfolio"], None);
    let stderr = stderr_of_failure(
        &["measure", "--portfolio", "-", "--shards", "many"],
        Some(&template),
    );
    assert!(stderr.contains("takes a number"), "stderr: {stderr}");

    let stderr = stderr_of_failure(
        &["simulate", "--scenario", "schedule", "--shards", "many"],
        None,
    );
    assert!(stderr.contains("takes a number"), "stderr: {stderr}");

    let stderr = stderr_of_failure(&["measure", "--portfolio", "-", "--shards"], None);
    assert!(stderr.contains("needs a value"), "stderr: {stderr}");
}

#[test]
fn positional_measure_names_work_on_either_side_of_city() {
    // Positionals are classified after flag parsing, so a measure name
    // means the same thing before and after --city.
    let before = stdout_of(
        &["measure", "--portfolio", "time", "--city", "10", "--json"],
        None,
    );
    let after = stdout_of(
        &["measure", "--portfolio", "--city", "10", "time", "--json"],
        None,
    );
    assert_eq!(before, after);
    assert!(before.contains("Time"), "subset honoured:\n{before}");
    assert!(!before.contains("Energy"), "subset honoured:\n{before}");
}

#[test]
fn city_flag_rejects_a_competing_file_argument_as_an_unknown_measure() {
    let stderr = stderr_of_failure(
        &["measure", "--portfolio", "input.json", "--city", "10"],
        None,
    );
    assert!(
        stderr.contains("unknown measure input.json"),
        "stderr: {stderr}"
    );
}

#[test]
fn seed_without_city_is_rejected() {
    let template = stdout_of(&["template", "--portfolio"], None);
    let stderr = stderr_of_failure(
        &["measure", "--portfolio", "-", "--seed", "9"],
        Some(&template),
    );
    assert!(
        stderr.contains("--seed only applies to a generated portfolio"),
        "stderr: {stderr}"
    );
}
