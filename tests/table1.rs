//! Table 1 end-to-end: the declared matrix matches the paper transcription,
//! and the behavioural probes confirm it up to the documented deviation.

use flexoffers::all_measures;
use flexoffers::measures::characteristics::{paper_table1, render_table};
use flexoffers::measures::probe::{empirical_characteristics, known_deviations, verify_measure};

#[test]
fn declared_matrices_match_the_paper() {
    let table = paper_table1();
    for (m, (name, expected)) in all_measures().iter().zip(table) {
        assert_eq!(m.short_name(), name);
        assert_eq!(m.declared_characteristics(), expected, "{name}");
    }
}

#[test]
fn probes_confirm_the_paper_up_to_documented_deviations() {
    let mut found = Vec::new();
    for m in all_measures() {
        found.extend(verify_measure(m.as_ref()));
    }
    assert_eq!(found, known_deviations());
}

#[test]
fn rendered_table_has_the_papers_shape() {
    let text = render_table(&paper_table1());
    // 8 characteristic rows + header.
    assert_eq!(text.lines().count(), 9);
    for header in [
        "Time",
        "Energy",
        "Product",
        "Vector",
        "Time-series",
        "Assignments",
        "Abs. Area",
        "Rel. Area",
    ] {
        assert!(text.lines().next().unwrap().contains(header));
    }
    for row in [
        "Captures time",
        "Captures energy",
        "Captures time & energy",
        "Captures size",
        "Captures positive flex-offers",
        "Captures negative flex-offers",
        "Captures Mixed flex-offers",
        "Single Value",
    ] {
        assert!(text.contains(row), "missing row {row}");
    }
}

#[test]
fn empirical_matrix_is_stable_across_calls() {
    // Probes are deterministic: no hidden randomness in the verdicts.
    for m in all_measures() {
        let a = empirical_characteristics(m.as_ref());
        let b = empirical_characteristics(m.as_ref());
        assert_eq!(a, b, "{}", m.short_name());
    }
}
