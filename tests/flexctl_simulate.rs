//! Integration tests for `flexctl simulate`: both scenario pipelines over
//! a generated city portfolio, the determinism of the `--json` mirror
//! across thread counts, and every documented error path (missing/unknown
//! scenario, unknown scheduler, zero threads, empty portfolio).

use std::process::{Command, Output, Stdio};

use serde::Deserialize;

/// Typed mirror of the `--json` report (the vendored `serde_json` has no
/// dynamic `Value`; typed deserialisation doubles as a schema check).
#[derive(Debug, Deserialize, PartialEq)]
struct JsonReport {
    scenario: String,
    seed: u64,
    households: usize,
    offers: usize,
    aggregates: usize,
    schedule: Option<ScheduleJson>,
    market: Option<MarketJson>,
    correlations: Vec<CorrelationJson>,
}

#[derive(Debug, Deserialize, PartialEq)]
struct ScheduleJson {
    scheduler: String,
    unrealizable_plans: usize,
    imbalance_before: ImbalanceJson,
    imbalance_after: ImbalanceJson,
    improvement_l1: f64,
}

#[derive(Debug, Deserialize, PartialEq)]
struct ImbalanceJson {
    l1: f64,
    l2: f64,
    peak: f64,
}

#[derive(Debug, Deserialize, PartialEq)]
struct MarketJson {
    orders: usize,
    rejected_lots: usize,
    procurement_cost: f64,
    imbalance_cost: f64,
    rejected_cost: f64,
    baseline_cost: f64,
    savings: f64,
    relative_savings: f64,
}

#[derive(Debug, Deserialize, PartialEq)]
struct CorrelationJson {
    measure: String,
    r: Option<f64>,
    evaluated: usize,
}

fn flexctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flexctl"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("flexctl runs")
}

/// Debug-build tests keep the portfolio at ~1k offers; the CI smoke runs
/// the release binary at the ≥10k default.
const HOUSEHOLDS: &str = "300";

fn simulate_json(scenario: &str, threads: &str) -> String {
    let out = flexctl(&[
        "simulate",
        "--scenario",
        scenario,
        "--households",
        HOUSEHOLDS,
        "--threads",
        threads,
        "--json",
    ]);
    assert!(
        out.status.success(),
        "simulate --scenario {scenario} --threads {threads} exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("output is UTF-8")
}

#[test]
fn schedule_scenario_text_report_names_its_fields() {
    let out = flexctl(&[
        "simulate",
        "--scenario",
        "schedule",
        "--households",
        HOUSEHOLDS,
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("UTF-8");
    for needle in [
        "scenario: schedule",
        "offers",
        "aggregates",
        "imbalance",
        "improvement (L1)",
        "correlation",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?}:\n{stdout}");
    }
}

#[test]
fn schedule_json_is_bitwise_identical_across_thread_counts() {
    let one = simulate_json("schedule", "1");
    let four = simulate_json("schedule", "4");
    assert_eq!(one, four, "schedule report must not depend on threads");

    let report: JsonReport = serde_json::from_str(&one).expect("--json parses");
    assert_eq!(report.scenario, "schedule");
    assert!(report.offers >= 1_000);
    assert!(report.aggregates > 0);
    assert!(report.market.is_none());
    let schedule = report.schedule.expect("schedule summary present");
    assert!(schedule.imbalance_after.l1 <= schedule.imbalance_before.l1);
    assert_eq!(report.correlations.len(), 8);
}

#[test]
fn market_json_is_bitwise_identical_across_thread_counts() {
    let one = simulate_json("market", "1");
    let four = simulate_json("market", "4");
    assert_eq!(one, four, "market report must not depend on threads");

    let report: JsonReport = serde_json::from_str(&one).expect("--json parses");
    assert_eq!(report.scenario, "market");
    assert!(report.schedule.is_none());
    let market = report.market.expect("market summary present");
    assert!(market.baseline_cost > 0.0);
    assert_eq!(market.orders + market.rejected_lots, report.aggregates);
}

#[test]
fn hillclimb_scheduler_is_accepted() {
    let out = flexctl(&[
        "simulate",
        "--scenario",
        "schedule",
        "--households",
        "100",
        "--scheduler",
        "hillclimb",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: JsonReport =
        serde_json::from_str(&String::from_utf8(out.stdout).expect("UTF-8")).expect("parses");
    assert_eq!(report.schedule.expect("summary").scheduler, "hillclimb");
}

#[test]
fn missing_scenario_is_rejected() {
    let out = flexctl(&["simulate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("--scenario"), "stderr: {stderr}");
}

#[test]
fn unknown_scenario_is_rejected() {
    let out = flexctl(&["simulate", "--scenario", "arbitrage"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("unknown scenario"), "stderr: {stderr}");
}

#[test]
fn unknown_scheduler_is_rejected() {
    let out = flexctl(&["simulate", "--scenario", "schedule", "--scheduler", "lp"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("unknown scheduler"), "stderr: {stderr}");
}

#[test]
fn zero_threads_is_rejected() {
    let out = flexctl(&["simulate", "--scenario", "market", "--threads", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        stderr.contains("thread count must be at least 1"),
        "stderr: {stderr}"
    );
}

#[test]
fn empty_portfolio_is_rejected() {
    let out = flexctl(&["simulate", "--scenario", "schedule", "--households", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("empty portfolio"), "stderr: {stderr}");
}

#[test]
fn non_numeric_flags_are_rejected() {
    for flag in ["--threads", "--households", "--seed"] {
        let out = flexctl(&["simulate", "--scenario", "market", flag, "many"]);
        assert!(!out.status.success(), "{flag} many must fail");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(stderr.contains("takes a number"), "stderr: {stderr}");
    }
}
