//! Integration tests for `flexctl serve --workers N`: the cross-process
//! cluster replay must serialise byte-identically to the `--batch` oracle
//! at any worker count, compose with `--journal` (resume included), and
//! reject the documented flag conflicts (`--workers 0`,
//! `--workers`+`--shards`, `--workers`+`--batch`, and the satellite
//! `--sync-every 0` / `--snapshot-every 0` ranges) with named messages.
//! Also pins the internal `shard-worker` subcommand's clean-EOF exit.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

fn flexctl(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("flexctl spawns");
    if let Some(input) = stdin {
        // The child may exit before draining stdin (flag errors are
        // rejected before any input is read), so a broken pipe is fine.
        let _ = child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes());
    }
    child.wait_with_output().expect("flexctl terminates")
}

/// Runs to success and returns (stdout, stderr) — the cluster paths put
/// lifecycle notes (worker starts, resumed journals) on stderr.
fn run_ok(args: &[&str], stdin: Option<&str>) -> (String, String) {
    let out = flexctl(args, stdin);
    assert!(
        out.status.success(),
        "flexctl {args:?} exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("output is UTF-8"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn stdout_of(args: &[&str], stdin: Option<&str>) -> String {
    run_ok(args, stdin).0
}

fn stderr_of_failure(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(!out.status.success(), "flexctl {args:?} must fail");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Scratch dir under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn join(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scratch_dir(tag: &str) -> ScratchDir {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("flexctl_cluster_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    ScratchDir(dir)
}

/// A small city script with churn and all four query kinds — workers
/// re-gather the whole book per query, so this stays modest for a
/// debug-build test (CI's cluster smoke replays a larger one).
fn script() -> String {
    stdout_of(
        &["events", "--city", "120", "--churn", "10", "--queries", "6"],
        None,
    )
}

const QUERY: &str = "{\"event\":\"query\",\"kind\":\"measure\"}\n";

#[test]
fn cluster_replay_is_byte_equal_to_batch_at_any_worker_count() {
    let script = script();
    let batch = stdout_of(&["serve", "--script", "-", "--batch"], Some(&script));
    assert_eq!(batch.lines().count(), 6, "one line per query:\n{batch}");
    for workers in ["1", "2", "4"] {
        let (live, stderr) = run_ok(
            &[
                "serve",
                "--script",
                "-",
                "--workers",
                workers,
                "--threads",
                "2",
            ],
            Some(&script),
        );
        assert_eq!(
            live, batch,
            "--workers {workers} must match the batch oracle byte for byte"
        );
        assert_eq!(
            stderr.matches("cluster worker").count(),
            workers.parse::<usize>().unwrap(),
            "one start line per worker: {stderr}"
        );
        assert!(
            !stderr.contains("respawned"),
            "no worker died during a clean replay: {stderr}"
        );
        assert_eq!(
            stderr.matches("cluster gather: ").count(),
            6,
            "one delta-gather counter line per query: {stderr}"
        );
    }
}

#[test]
fn back_to_back_queries_confirm_every_shard_by_digest() {
    // Two queries with no mutation in between: the first gather pulls
    // both shards in full (first contact), the second must confirm both
    // by state digest and ship nothing — the counter line the CI smoke
    // also greps for.
    let mut script = stdout_of(
        &["events", "--city", "40", "--churn", "5", "--queries", "0"],
        None,
    );
    script.push_str(QUERY);
    script.push_str(QUERY);
    let (_, stderr) = run_ok(&["serve", "--script", "-", "--workers", "2"], Some(&script));
    assert!(
        stderr.contains("cluster gather: 2 dirty / 0 cached"),
        "first contact ships both shards in full: {stderr}"
    );
    assert!(
        stderr.contains("cluster gather: 0 dirty / 2 cached"),
        "an unchanged book gathers entirely from the digest cache: {stderr}"
    );
}

#[test]
fn cluster_serve_composes_with_a_journal_and_resumes_it() {
    let scratch = scratch_dir("resume");
    let journal = scratch.join("book.journal");
    // Pure mutations first (no queries), journaled by a 2-worker cluster.
    let adds = stdout_of(
        &["events", "--city", "40", "--churn", "5", "--queries", "0"],
        None,
    );
    let (out, stderr) = run_ok(
        &[
            "serve",
            "--script",
            "-",
            "--workers",
            "2",
            "--journal",
            &journal,
        ],
        Some(&adds),
    );
    assert!(out.is_empty(), "no queries, no output:\n{out}");
    assert!(
        !stderr.contains("resumed journal"),
        "a fresh journal resumes silently: {stderr}"
    );

    // Resume the same journal under the cluster and query the recovered
    // book; the in-process tier resuming an identical journal is the
    // oracle, so recovery and placement agree across tiers byte for byte.
    let events = adds.lines().count() as u64;
    let (clustered, stderr) = run_ok(
        &[
            "serve",
            "--script",
            "-",
            "--workers",
            "2",
            "--journal",
            &journal,
        ],
        Some(QUERY),
    );
    assert!(
        stderr.contains(&format!("resumed journal at seq {events}")),
        "stderr announces the resume: {stderr}"
    );

    let oracle_scratch = scratch_dir("oracle");
    let oracle_journal = oracle_scratch.join("book.journal");
    stdout_of(
        &["serve", "--script", "-", "--journal", &oracle_journal],
        Some(&adds),
    );
    let in_process = stdout_of(
        &["serve", "--script", "-", "--journal", &oracle_journal],
        Some(QUERY),
    );
    assert_eq!(
        clustered, in_process,
        "a resumed cluster answers exactly like the resumed in-process tier"
    );
}

#[test]
fn cluster_flag_conflicts_are_named_errors() {
    let stderr = stderr_of_failure(&["serve", "--script", "-", "--workers", "0"], Some(QUERY));
    assert!(
        stderr.contains("--workers must be at least 1"),
        "stderr: {stderr}"
    );

    let stderr = stderr_of_failure(
        &["serve", "--script", "-", "--workers", "2", "--shards", "4"],
        Some(QUERY),
    );
    assert!(
        stderr.contains("--workers and --shards are exclusive"),
        "stderr: {stderr}"
    );

    let stderr = stderr_of_failure(
        &["serve", "--script", "-", "--batch", "--workers", "2"],
        Some(QUERY),
    );
    assert!(
        stderr.contains("--workers does not apply to --batch"),
        "stderr: {stderr}"
    );

    let stderr = stderr_of_failure(&["serve", "--script", "-", "--workers", "two"], Some(QUERY));
    assert!(stderr.contains("takes a number"), "stderr: {stderr}");
}

#[test]
fn zero_durability_intervals_are_named_errors() {
    // The satellite sweep: 0 used to wrap into pathological behaviour
    // (sync never, snapshot every mutation); both are now rejected with
    // the documented N >= 1 range.
    let scratch = scratch_dir("zeros");
    let journal = scratch.join("book.journal");
    let stderr = stderr_of_failure(
        &[
            "serve",
            "--script",
            "-",
            "--journal",
            &journal,
            "--sync-every",
            "0",
        ],
        Some(QUERY),
    );
    assert!(
        stderr.contains("--sync-every must be at least 1"),
        "stderr: {stderr}"
    );
    let stderr = stderr_of_failure(
        &[
            "serve",
            "--script",
            "-",
            "--journal",
            &journal,
            "--snapshot-every",
            "0",
        ],
        Some(QUERY),
    );
    assert!(
        stderr.contains("--snapshot-every must be at least 1"),
        "stderr: {stderr}"
    );
    assert!(
        !scratch.0.join("book.journal").exists(),
        "flag errors are rejected before the journal is created"
    );
}

#[test]
fn the_shard_worker_subcommand_exits_cleanly_on_eof() {
    // The internal subcommand `serve --workers` respawns workers through;
    // a supervisor closing the pipe must read as a clean shutdown.
    let out = flexctl(&["shard-worker"], Some(""));
    assert!(
        out.status.success(),
        "EOF on stdin is a clean exit; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "no requests, no replies");
}
