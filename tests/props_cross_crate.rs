//! Property tests spanning crates: measures vs aggregation vs scheduling.

use flexoffers::aggregation::aggregate;
use flexoffers::measures::{
    AbsoluteAreaFlexibility, EnergyFlexibility, Measure, ProductFlexibility, TimeFlexibility,
    VectorFlexibility,
};
use flexoffers::scheduling::{GreedyScheduler, Scheduler};
use flexoffers::{FlexOffer, SchedulingProblem, Series, SignClass, Slice};
use proptest::prelude::*;

fn arb_flexoffer() -> impl Strategy<Value = FlexOffer> {
    (
        0i64..4,
        0i64..4,
        prop::collection::vec((-3i64..4, 0i64..4), 1..4),
    )
        .prop_map(|(tes, w, raw)| {
            FlexOffer::new(
                tes,
                tes + w,
                raw.into_iter()
                    .map(|(min, sw)| Slice::new(min, min + sw).unwrap())
                    .collect(),
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aggregate_time_flexibility_is_the_member_minimum(
        group in prop::collection::vec(arb_flexoffer(), 1..5)
    ) {
        let agg = aggregate(&group).unwrap();
        let min_tf = group.iter().map(|f| TimeFlexibility.of(f).unwrap()).fold(f64::MAX, f64::min);
        prop_assert_eq!(TimeFlexibility.of(agg.flexoffer()).unwrap(), min_tf);
    }

    #[test]
    fn aggregate_energy_flexibility_is_the_member_sum(
        group in prop::collection::vec(arb_flexoffer(), 1..5)
    ) {
        let agg = aggregate(&group).unwrap();
        let sum: f64 = group.iter().map(|f| EnergyFlexibility.of(f).unwrap()).sum();
        prop_assert_eq!(EnergyFlexibility.of(agg.flexoffer()).unwrap(), sum);
    }

    #[test]
    fn product_flexibility_of_aggregate_never_exceeds_time_sum_times_energy_sum(
        group in prop::collection::vec(arb_flexoffer(), 1..5)
    ) {
        // product(agg) = min(tf) * sum(ef) <= sum(tf) * sum(ef).
        let agg = aggregate(&group).unwrap();
        let tf_sum: f64 = group.iter().map(|f| TimeFlexibility.of(f).unwrap()).sum();
        let ef_sum: f64 = group.iter().map(|f| EnergyFlexibility.of(f).unwrap()).sum();
        prop_assert!(ProductFlexibility.of(agg.flexoffer()).unwrap() <= tf_sum * ef_sum + 1e-9);
    }

    #[test]
    fn area_flexibility_of_pure_consumption_aggregate_is_at_least_each_members(
        group in prop::collection::vec(
            (0i64..3, 0i64..3, prop::collection::vec((0i64..4, 0i64..4), 1..3)), 1..4)
    ) {
        let members: Vec<FlexOffer> = group
            .into_iter()
            .map(|(tes, w, raw)| FlexOffer::new(
                tes,
                tes + w,
                raw.into_iter().map(|(min, sw)| Slice::new(min, min + sw).unwrap()).collect(),
            ).unwrap())
            .collect();
        let agg = aggregate(&members).unwrap();
        if agg.flexoffer().sign() != SignClass::Mixed {
            let abs = AbsoluteAreaFlexibility::new();
            let agg_area = abs.of(agg.flexoffer()).unwrap();
            // Aggregation can both create area flexibility (overestimation,
            // EXPERIMENTS.md finding 4) and destroy it (the min-rule can
            // erase a member's start window), so no member-wise dominance
            // holds in either direction. What must hold: non-negativity,
            // and the union-area bound by the occupancy window times the
            // tallest achievable band.
            prop_assert!(agg_area >= -1e-9);
            let fo = agg.flexoffer();
            let window = (fo.latest_end() - fo.earliest_start()) as f64;
            let tallest = (0..fo.slice_count())
                .map(|i| {
                    let (lo, hi) = fo.achievable_band(i);
                    (hi.max(0) - lo.min(0)) as f64
                })
                .fold(0.0f64, f64::max);
            prop_assert!(agg_area <= window * tallest - fo.total_min().min(0) as f64 + 1e-9);
        }
    }

    #[test]
    fn greedy_scheduling_of_aggregates_is_feasible(
        group in prop::collection::vec(arb_flexoffer(), 1..4),
        target in prop::collection::vec(-4i64..8, 1..8),
    ) {
        let agg = aggregate(&group).unwrap();
        let problem = SchedulingProblem::new(
            vec![agg.flexoffer().clone()],
            Series::new(0, target),
        );
        let schedule = GreedyScheduler::new().schedule(&problem).unwrap();
        prop_assert!(problem.is_feasible(&schedule));
        // The scheduled aggregate assignment disaggregates or is a
        // documented overestimation; both are acceptable, panics are not.
        let _ = agg.disaggregate(&schedule.assignments()[0]);
    }

    #[test]
    fn vector_flexibility_of_aggregate_is_bounded_by_member_sum(
        group in prop::collection::vec(arb_flexoffer(), 1..5)
    ) {
        // tf(agg) <= sum(tf), ef(agg) = sum(ef) -> each component is
        // bounded by the member sums, so any monotone norm is too.
        let agg = aggregate(&group).unwrap();
        let v = VectorFlexibility::default();
        let agg_v = v.of(agg.flexoffer()).unwrap();
        let sum_v: f64 = group.iter().map(|f| v.of(f).unwrap()).sum();
        prop_assert!(agg_v <= sum_v + 1e-9);
    }
}
