//! End-to-end coverage of the future-work extensions: measure-aware
//! aggregation, the aggregate-schedule-disaggregate pipeline, annealing,
//! normalisation and the measure registry — all through the facade.

use flexoffers::aggregation::MeasureAwareGrouping;
use flexoffers::measures::{
    available_names, measure_by_name, NormalizedMeasure, ProductFlexibility, VectorFlexibility,
    WeightedMeasure,
};
use flexoffers::scheduling::{
    schedule_via_aggregation, AnnealingScheduler, GreedyScheduler, Scheduler,
};
use flexoffers::workloads::res::{res_production_trace, ResTraceConfig};
use flexoffers::workloads::{district, PopulationBuilder};
use flexoffers::{GroupingParams, Measure, SchedulingProblem};

#[test]
fn measure_aware_grouping_bounds_loss_on_a_real_district() {
    let portfolio = district(21, 50);
    let vector = VectorFlexibility::default();
    let tight = MeasureAwareGrouping::new(&vector, 0.05)
        .aggregate_portfolio(portfolio.as_slice())
        .unwrap();
    let loose = MeasureAwareGrouping::new(&vector, 0.5)
        .aggregate_portfolio(portfolio.as_slice())
        .unwrap();
    assert!(
        loose.len() <= tight.len(),
        "bigger budget, more compression"
    );
    // Tight budget keeps nearly all vector flexibility.
    let before: f64 = portfolio.iter().map(|f| vector.of(f).unwrap()).sum();
    let after: f64 = tight
        .iter()
        .map(|a| vector.of(a.flexoffer()).unwrap())
        .sum();
    assert!(after >= 0.80 * before, "kept {after} of {before}");
}

#[test]
fn pipeline_runs_a_district_end_to_end() {
    let portfolio = PopulationBuilder::new(33)
        .electric_vehicles(12)
        .dishwashers(18)
        .heat_pumps(8)
        .build();
    let res = res_production_trace(&ResTraceConfig {
        seed: 33,
        days: 2,
        solar_capacity: 40,
        wind_capacity: 60,
    });
    let problem = SchedulingProblem::new(portfolio.into_offers(), res);
    let outcome = schedule_via_aggregation(
        &problem,
        &GroupingParams::with_tolerances(2, 2),
        &GreedyScheduler::new(),
    )
    .unwrap();
    assert!(problem.is_feasible(&outcome.schedule));
    assert!(
        outcome.aggregates < problem.offers().len(),
        "aggregation must reduce the problem"
    );
}

#[test]
fn annealing_is_feasible_and_competitive_on_a_district() {
    let portfolio = PopulationBuilder::new(4)
        .electric_vehicles(8)
        .dishwashers(10)
        .build();
    let res = res_production_trace(&ResTraceConfig {
        seed: 4,
        days: 2,
        solar_capacity: 30,
        wind_capacity: 40,
    });
    let problem = SchedulingProblem::new(portfolio.into_offers(), res);
    let greedy = GreedyScheduler::new().schedule(&problem).unwrap();
    let annealed = AnnealingScheduler::new(4, 1_000)
        .schedule(&problem)
        .unwrap();
    assert!(problem.is_feasible(&annealed));
    assert!(
        annealed.imbalance(problem.target()).l2 <= greedy.imbalance(problem.target()).l2 + 1e-9
    );
}

#[test]
fn registry_resolves_everything_it_advertises_on_real_offers() {
    let portfolio = district(11, 10);
    for name in available_names() {
        let m = measure_by_name(name).unwrap();
        let mut defined = 0;
        for fo in &portfolio {
            if m.of(fo).is_ok() {
                defined += 1;
            }
        }
        assert!(defined > 0, "{name} undefined on an entire district");
    }
}

#[test]
fn normalized_weighting_combines_incommensurable_measures() {
    let portfolio = district(12, 20);
    let offers = portfolio.as_slice();
    let combo = WeightedMeasure::new(vec![
        (
            0.5,
            Box::new(
                NormalizedMeasure::fit(Box::new(VectorFlexibility::default()), offers).unwrap(),
            ) as Box<dyn Measure>,
        ),
        (
            0.5,
            Box::new(NormalizedMeasure::fit(Box::new(ProductFlexibility), offers).unwrap()),
        ),
    ]);
    // Every offer scores in [0, 1] (convex combination of unit-scaled parts).
    for fo in offers {
        let v = combo.of(fo).unwrap();
        assert!((-1e-9..=1.0 + 1e-9).contains(&v), "score {v} out of range");
    }
}
