//! End-to-end reproduction of every worked example in the paper, through
//! the public facade API only.

use flexoffers::area::{assignment_area, union_area};
use flexoffers::measures::{
    AbsoluteAreaFlexibility, AssignmentFlexibility, EnergyFlexibility, ProductFlexibility,
    RelativeAreaFlexibility, TimeSeriesFlexibility, VectorFlexibility,
};
use flexoffers::{all_measures, Assignment, FlexOffer, Measure, Norm, Slice};

fn fo(tes: i64, tls: i64, slices: &[(i64, i64)]) -> FlexOffer {
    FlexOffer::new(
        tes,
        tls,
        slices
            .iter()
            .map(|&(a, b)| Slice::new(a, b).unwrap())
            .collect(),
    )
    .unwrap()
}

fn figure1() -> FlexOffer {
    fo(1, 6, &[(1, 3), (2, 4), (0, 5), (0, 3)])
}

#[test]
fn section2_figure1_assignment_membership() {
    let f = figure1();
    let fa1 = Assignment::new(2, vec![2, 3, 1, 2]);
    assert!(f.is_valid_assignment(&fa1));
    // And it shows up in the enumerated L(f).
    assert!(f.assignments().any(|a| a == fa1));
}

#[test]
fn examples_1_to_3_primitives() {
    let f = figure1();
    assert_eq!(f.time_flexibility(), 5);
    assert_eq!(f.energy_flexibility(), 12);
    assert_eq!(ProductFlexibility.of(&f).unwrap(), 60.0);
}

#[test]
fn example_4_vector_by_the_definitions() {
    // The paper prints <5,10>; its own Example 2 forces <5,12>.
    let f = figure1();
    assert_eq!(VectorFlexibility::new(Norm::L1).of(&f).unwrap(), 17.0);
    assert_eq!(VectorFlexibility::new(Norm::L2).of(&f).unwrap(), 13.0);
}

#[test]
fn example_5_and_13_time_series() {
    let f1 = fo(0, 1, &[(0, 1)]);
    let f1p = fo(0, 10, &[(0, 1)]);
    for norm in [Norm::L1, Norm::L2] {
        assert_eq!(TimeSeriesFlexibility::new(norm).of(&f1).unwrap(), 1.0);
        assert_eq!(TimeSeriesFlexibility::new(norm).of(&f1p).unwrap(), 1.0);
    }
}

#[test]
fn example_6_and_14_assignment_counts() {
    assert_eq!(
        AssignmentFlexibility::new()
            .of(&fo(0, 2, &[(0, 2)]))
            .unwrap(),
        9.0
    );
    let f6 = fo(0, 2, &[(-1, 2), (-4, -1), (-3, 1)]);
    assert_eq!(AssignmentFlexibility::new().of(&f6).unwrap(), 240.0);
    // The enumerator agrees with Definition 8's closed form here (default
    // totals: nothing is pruned).
    assert_eq!(f6.assignments().count(), 240);
}

#[test]
fn example_7_area_cells() {
    let cells = assignment_area(&Assignment::new(1, vec![2, 1, 3]));
    let expected: Vec<(i64, i64)> = vec![(1, 0), (1, 1), (2, 0), (3, 0), (3, 1), (3, 2)];
    assert_eq!(
        cells.iter().map(|c| (c.t, c.e)).collect::<Vec<_>>(),
        expected
    );
}

#[test]
fn examples_8_to_10_area_measures() {
    let f4 = fo(0, 4, &[(2, 2)]);
    let f5 = fo(0, 4, &[(1, 1), (2, 2)]);
    assert_eq!(union_area(&f4).size(), 10);
    assert_eq!(union_area(&f5).size(), 11);
    assert_eq!(AbsoluteAreaFlexibility::new().of(&f4).unwrap(), 8.0);
    assert_eq!(AbsoluteAreaFlexibility::new().of(&f5).unwrap(), 8.0);
    assert_eq!(RelativeAreaFlexibility::new().of(&f4).unwrap(), 4.0);
    assert!((RelativeAreaFlexibility::new().of(&f5).unwrap() - 16.0 / 6.0).abs() < 1e-12);
}

#[test]
fn examples_11_and_12_size_blindness() {
    let fx = fo(1, 3, &[(1, 5)]);
    let fy = fo(1, 3, &[(101, 105)]);
    assert_eq!(ProductFlexibility.of(&fx).unwrap(), 8.0);
    assert_eq!(ProductFlexibility.of(&fy).unwrap(), 8.0);
    assert_eq!(
        VectorFlexibility::new(Norm::L1).of(&fx).unwrap(),
        VectorFlexibility::new(Norm::L1).of(&fy).unwrap()
    );
    // Zero-collapse case.
    assert_eq!(ProductFlexibility.of(&fo(2, 8, &[(5, 5)])).unwrap(), 0.0);
    // Only the area measures tell the pair apart.
    assert_ne!(
        AbsoluteAreaFlexibility::new().of(&fx).unwrap(),
        AbsoluteAreaFlexibility::new().of(&fy).unwrap()
    );
}

#[test]
fn example_15_mixed_area() {
    let f6 = fo(0, 2, &[(-1, 2), (-4, -1), (-3, 1)]);
    assert_eq!(f6.total_min(), -8);
    assert_eq!(f6.total_max(), 2);
    assert_eq!(union_area(&f6).size(), 24);
    assert_eq!(AbsoluteAreaFlexibility::new().of(&f6).unwrap(), 32.0);
    assert!((RelativeAreaFlexibility::new().of(&f6).unwrap() - 6.4).abs() < 1e-12);
}

#[test]
fn all_measures_agree_with_direct_constructors_on_figure1() {
    // The `all_measures` registry and the concrete types are the same
    // objects behaviourally.
    let f = figure1();
    let direct: Vec<f64> = vec![
        f.time_flexibility() as f64,
        EnergyFlexibility.of(&f).unwrap(),
        ProductFlexibility.of(&f).unwrap(),
        VectorFlexibility::default().of(&f).unwrap(),
        TimeSeriesFlexibility::default().of(&f).unwrap(),
        AssignmentFlexibility::default().of(&f).unwrap(),
        AbsoluteAreaFlexibility::new().of(&f).unwrap(),
        RelativeAreaFlexibility::new().of(&f).unwrap(),
    ];
    for (m, expected) in all_measures().iter().zip(direct) {
        assert_eq!(m.of(&f).unwrap(), expected, "{}", m.name());
    }
}
