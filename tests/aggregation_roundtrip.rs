//! Cross-crate pipeline: synthetic district -> grouping -> aggregation ->
//! assignment -> disaggregation -> validity, plus loss accounting.

use flexoffers::aggregation::{aggregate_portfolio, balance_aggregate, loss_table};
use flexoffers::measures::{EnergyFlexibility, Measure, TimeFlexibility};
use flexoffers::timeseries::ops::sum_series;
use flexoffers::workloads::district;
use flexoffers::{GroupingParams, SignClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn district_aggregates_and_disaggregates() {
    let portfolio = district(5, 40);
    let aggregates =
        aggregate_portfolio(portfolio.as_slice(), &GroupingParams::with_tolerances(2, 2));
    assert!(
        aggregates.len() < portfolio.len(),
        "aggregation reduces count"
    );

    let mut rng = StdRng::seed_from_u64(9);
    let mut checked = 0;
    for agg in &aggregates {
        // Sample an assignment of the aggregate and push it back down.
        let assignment = agg.flexoffer().sample_assignment(&mut rng);
        match agg.disaggregate(&assignment) {
            Ok(parts) => {
                assert_eq!(parts.len(), agg.len());
                for (member, part) in agg.members().iter().zip(&parts) {
                    assert!(member.is_valid_assignment(part));
                }
                let series: Vec<_> = parts.iter().map(|p| p.as_series()).collect();
                assert_eq!(sum_series(series.iter()), assignment.as_series());
                checked += 1;
            }
            Err(flexoffers::aggregation::DisaggregationError::Unrealizable) => {
                // Legal: the aggregate overestimates joint flexibility.
            }
            Err(e) => panic!("unexpected disaggregation error: {e}"),
        }
    }
    assert!(checked > 0, "at least some samples must disaggregate");
}

#[test]
fn energy_flexibility_is_conserved_time_flexibility_shrinks() {
    let portfolio = district(6, 30);
    let aggregates = aggregate_portfolio(portfolio.as_slice(), &GroupingParams::single_group());
    let after: Vec<_> = aggregates.iter().map(|a| a.flexoffer().clone()).collect();
    assert_eq!(
        EnergyFlexibility.of_set(portfolio.as_slice()).unwrap(),
        EnergyFlexibility.of_set(&after).unwrap(),
        "totals sum exactly"
    );
    assert!(
        TimeFlexibility.of_set(&after).unwrap()
            <= TimeFlexibility.of_set(portfolio.as_slice()).unwrap(),
        "the min-rule can only shrink summed time flexibility"
    );
}

#[test]
fn loss_table_runs_on_real_districts() {
    let portfolio = district(7, 25);
    let aggregates =
        aggregate_portfolio(portfolio.as_slice(), &GroupingParams::with_tolerances(4, 4));
    let table = loss_table(portfolio.as_slice(), &aggregates);
    assert_eq!(table.len(), 8);
    // Consumption + production portfolios keep every measure defined
    // before aggregation; after aggregation mixed aggregates may appear,
    // but the default area policy still evaluates them.
    for entry in table {
        entry.expect("definition-literal policies evaluate everywhere");
    }
}

#[test]
fn balance_aggregation_produces_mixed_aggregates_that_defeat_area_measures() {
    let portfolio = district(8, 60);
    let aggregates = balance_aggregate(portfolio.as_slice());
    let mixed = aggregates
        .iter()
        .filter(|a| a.flexoffer().sign() == SignClass::Mixed)
        .count();
    assert!(
        mixed > 0,
        "pairing production with consumption yields mixed"
    );
    // The strict area policy refuses exactly those aggregates.
    use flexoffers::measures::AbsoluteAreaFlexibility;
    let strict = AbsoluteAreaFlexibility::rejecting_mixed();
    let refusals = aggregates
        .iter()
        .filter(|a| strict.of(a.flexoffer()).is_err())
        .count();
    assert_eq!(refusals, mixed);
}
