//! Integration tests for `flexctl serve --listen`: a recorded
//! multi-connection session must replay byte-identically through
//! `serve --script --batch`, SIGTERM must drain in flight requests and
//! run the durable sink's `finish()` (so `recover` replays nothing), the
//! error paths (deadline expiry, malformed frames, connecting after
//! shutdown) must behave as `docs/PROTOCOL.md` specifies, and the
//! documented flag conflicts must be rejected with named messages.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Output, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use flexoffers::net::{NetClient, Reply};
use flexoffers::serving::{Event, QueryKind};
use flexoffers::workloads::city_stream;

fn flexctl(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("flexctl spawns");
    if let Some(input) = stdin {
        // The child may reject flags before reading stdin; broken pipe ok.
        let _ = child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes());
    }
    child.wait_with_output().expect("flexctl terminates")
}

fn stdout_of(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(
        out.status.success(),
        "flexctl {args:?} exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("output is UTF-8")
}

fn stderr_of_failure(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(!out.status.success(), "flexctl {args:?} must fail");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Scratch dir under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scratch_dir(tag: &str) -> ScratchDir {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("flexctl_net_{tag}_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    ScratchDir(dir)
}

fn path_str(path: &Path) -> &str {
    path.to_str().expect("scratch paths are UTF-8")
}

/// A `flexctl serve --listen` child plus the address it bound.
struct Server {
    child: Child,
    stderr: BufReader<ChildStderr>,
    addr: String,
}

impl Server {
    /// Spawns `flexctl serve --listen 127.0.0.1:0 <extra>` and scrapes the
    /// bound address from its stderr.
    fn spawn(extra: &[&str]) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
        cmd.args(["serve", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("flexctl serve --listen spawns");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut line = String::new();
        stderr
            .read_line(&mut line)
            .expect("server announces its address");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first stderr line: {line:?}"))
            .to_owned();
        Server {
            child,
            stderr,
            addr,
        }
    }

    /// SIGTERMs the child and returns (stdout, remaining stderr); asserts
    /// a clean exit.
    fn terminate(mut self) -> (String, String) {
        let pid = self.child.id().to_string();
        // Child::kill is SIGKILL; graceful drain needs a real SIGTERM.
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("kill runs");
        assert!(status.success(), "kill -TERM {pid}");
        let out = self.child.wait_with_output().expect("server exits");
        let mut rest = String::new();
        self.stderr
            .read_to_string(&mut rest)
            .expect("stderr drains");
        assert!(
            out.status.success(),
            "serve --listen exits 0 after SIGTERM; stderr: {rest}"
        );
        (
            String::from_utf8(out.stdout).expect("answers are UTF-8"),
            rest,
        )
    }
}

fn expect_ok(reply: Reply, what: &str) -> Reply {
    assert!(reply.is_ok(), "{what}: got {reply:?}");
    reply
}

fn error_code(reply: &Reply) -> Option<&str> {
    match reply {
        Reply::Err { code, .. } => Some(code.as_str()),
        Reply::Ok { .. } => None,
    }
}

/// The byte-identity oracle: three concurrent connections mutate and
/// query one journaled server; the recorded session replayed through the
/// batch oracle must reproduce the served answer bytes, and SIGTERM must
/// leave a journal whose recovery replays nothing (the shutdown snapshot
/// covered it).
#[test]
fn recorded_multi_connection_session_replays_byte_identically() {
    let dir = scratch_dir("replay");
    let record = dir.join("session.jsonl");
    let journal = dir.join("events.journal");
    let server = Server::spawn(&[
        "--record",
        path_str(&record),
        "--journal",
        path_str(&journal),
        "--shards",
        "2",
        "--max-conns",
        "3",
    ]);
    let addr = server.addr.clone();

    std::thread::scope(|scope| {
        for c in 0u64..3 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = NetClient::connect(addr.as_str()).expect("client connects");
                let offers: Vec<_> = city_stream(100 + c, 6).collect();
                let mut owned = Vec::new();
                for (i, offer) in offers.iter().cloned().enumerate() {
                    let reply =
                        expect_ok(client.send_event(&Event::Add(offer)).expect("add"), "add");
                    owned.push(reply.assigned_id().expect("adds assign ids"));
                    if i % 2 == 1 {
                        let kind = QueryKind::all()[(c as usize + i) % 4];
                        expect_ok(
                            client.send_event(&Event::Query(kind)).expect("query"),
                            "query",
                        );
                    }
                }
                // Each connection touches only ids it added itself, so the
                // session is valid under any interleaving.
                let id = owned[0];
                let offer = offers[1].clone();
                expect_ok(
                    client
                        .send_event(&Event::Update { id, offer })
                        .expect("update"),
                    "update",
                );
                expect_ok(
                    client
                        .send_event(&Event::Remove { id: owned[1] })
                        .expect("remove"),
                    "remove",
                );
            });
        }
    });

    let (served_answers, stderr) = server.terminate();
    assert!(
        stderr.contains("served 3 connections"),
        "summary reports the connections: {stderr}"
    );

    // The record is a valid script whose batch replay is byte-identical
    // to what the live server answered.
    let session = std::fs::read_to_string(&record).expect("session recorded");
    let replayed = stdout_of(&["serve", "--script", path_str(&record), "--batch"], None);
    assert_eq!(
        served_answers, replayed,
        "batch replay of the recorded session must reproduce the served bytes"
    );
    assert!(
        session.lines().count() > 30,
        "three connections recorded a real session"
    );

    // SIGTERM ran the durable sink's finish(): the shutdown snapshot
    // satisfies recovery without replaying any journal suffix.
    let recover = flexctl(&["recover", "--journal", path_str(&journal)], None);
    assert!(recover.status.success(), "recover succeeds");
    let recover_stderr = String::from_utf8_lossy(&recover.stderr);
    assert!(
        recover_stderr.contains("replayed 0"),
        "shutdown snapshot covers the whole journal: {recover_stderr}"
    );
}

/// `--deadline-ms 0` refuses every query with a structured `deadline`
/// error while mutations keep working, and the connection stays open.
#[test]
fn zero_deadline_expires_queries_with_a_structured_error() {
    let server = Server::spawn(&["--deadline-ms", "0"]);
    let mut client = NetClient::connect(server.addr.as_str()).expect("client connects");
    let offer = city_stream(7, 2).next().expect("city has offers");
    expect_ok(client.send_event(&Event::Add(offer)).expect("add"), "add");
    let reply = client
        .send_event(&Event::Query(QueryKind::Measure))
        .expect("query sends");
    assert_eq!(
        error_code(&reply),
        Some("deadline"),
        "expired query: {reply:?}"
    );
    // The deadline error is per request, not per connection.
    expect_ok(
        client
            .send_event(&Event::Remove { id: 0 })
            .expect("remove after expiry"),
        "remove after expiry",
    );
    let (_, stderr) = server.terminate();
    assert!(
        stderr.contains("1 deadline-expired"),
        "summary counts the expiry: {stderr}"
    );
}

/// A malformed frame closes its connection with a `bad_frame` error, and
/// a connection refused mid-drain or attempted after shutdown never gets
/// served.
#[test]
fn malformed_frames_close_and_shutdown_refuses_new_connections() {
    let server = Server::spawn(&[]);
    let addr = server.addr.clone();

    let mut client = NetClient::connect(addr.as_str()).expect("client connects");
    let reply = client
        .send_raw("this is not a frame")
        .expect("raw line sends")
        .expect("server answers before closing");
    let reply = flexoffers::net::parse_reply(&reply).expect("error reply parses");
    assert_eq!(error_code(&reply), Some("bad_frame"), "{reply:?}");
    // The server hangs up after a framing error: the next write either
    // sees the closed socket or gets no reply, never an answer.
    assert!(
        !matches!(client.send_raw("{}"), Ok(Some(_))),
        "connection closed after bad_frame"
    );

    let (_, stderr) = server.terminate();
    assert!(stderr.contains("1 errors"), "summary counts it: {stderr}");
    // The listener is gone after drain; a fresh connection must fail.
    assert!(
        std::net::TcpStream::connect(addr.as_str()).is_err(),
        "connecting after shutdown must be refused"
    );
}

/// The documented serve flag conflicts are named errors, not silent
/// acceptance.
#[test]
fn serve_flag_conflicts_are_named_errors() {
    let err = stderr_of_failure(
        &["serve", "--script", "-", "--listen", "127.0.0.1:0"],
        Some(""),
    );
    assert!(err.contains("--script and --listen are exclusive"), "{err}");

    let err = stderr_of_failure(&["serve", "--listen", "127.0.0.1:0", "--batch"], None);
    assert!(err.contains("--batch does not apply to --listen"), "{err}");

    let err = stderr_of_failure(&["serve", "--script", "-", "--record", "x.jsonl"], Some(""));
    assert!(
        err.contains("--record/--max-conns/--deadline-ms need --listen"),
        "{err}"
    );

    let err = stderr_of_failure(&["serve"], None);
    assert!(
        err.contains("serve needs --script <events.jsonl|-> or --listen ADDR"),
        "{err}"
    );

    let err = stderr_of_failure(&["bomb"], None);
    assert!(err.contains("bomb needs --addr"), "{err}");
}

/// `flexctl bomb` drives a live server end to end and reports latency
/// percentiles; the server survives it and drains cleanly.
#[test]
fn bomb_load_generator_round_trips_against_a_live_server() {
    let server = Server::spawn(&["--max-conns", "2"]);
    let out = flexctl(
        &[
            "bomb",
            "--addr",
            &server.addr,
            "--conns",
            "2",
            "--events",
            "40",
        ],
        None,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "bomb exits 0; stdout: {stdout}; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("80 requests"), "{stdout}");
    assert!(stdout.contains("0 error replies"), "{stdout}");
    assert!(stdout.contains("p999"), "{stdout}");
    let (_, stderr) = server.terminate();
    assert!(stderr.contains("served 2 connections"), "{stderr}");
}
