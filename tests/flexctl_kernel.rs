//! Integration tests for `flexctl --kernel`: the columnar and scalar
//! kernels must serialise byte-identically on every surface that accepts
//! the flag (measure, simulate), `auto` must match both, and the
//! documented error paths (missing value, unknown kernel) must be
//! rejected with named messages.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn flexctl(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("flexctl spawns");
    if let Some(input) = stdin {
        // The child may exit before draining stdin (flag errors are
        // rejected before any input is read), so a broken pipe is fine.
        let _ = child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes());
    }
    child.wait_with_output().expect("flexctl terminates")
}

fn stdout_of(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(
        out.status.success(),
        "flexctl {args:?} exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("output is UTF-8")
}

fn stderr_of_failure(args: &[&str], stdin: Option<&str>) -> String {
    let out = flexctl(args, stdin);
    assert!(!out.status.success(), "flexctl {args:?} must fail");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// `city(seed 7, 2956 households)` is 10 003 offers — the 10k scale the
/// engine pipelines are sized for.
const CITY_10K: &str = "2956";

#[test]
fn kernel_choice_never_changes_a_measure_output_byte_at_10k_offers() {
    let scalar = stdout_of(
        &[
            "measure",
            "--portfolio",
            "--city",
            CITY_10K,
            "--kernel",
            "scalar",
            "--json",
        ],
        None,
    );
    assert!(
        scalar.contains("\"offers\": 10003"),
        "city sizing drifted:\n{scalar}"
    );
    for kernel in ["columnar", "auto"] {
        let candidate = stdout_of(
            &[
                "measure",
                "--portfolio",
                "--city",
                CITY_10K,
                "--kernel",
                kernel,
                "--json",
            ],
            None,
        );
        assert_eq!(
            scalar, candidate,
            "--kernel {kernel} must not change a single output byte"
        );
    }
    // The default (no flag) is auto, so it must match too.
    let default = stdout_of(
        &["measure", "--portfolio", "--city", CITY_10K, "--json"],
        None,
    );
    assert_eq!(scalar, default);
}

#[test]
fn kernel_choice_composes_with_shards_and_threads() {
    let scalar = stdout_of(
        &[
            "measure",
            "--portfolio",
            "--city",
            CITY_10K,
            "--kernel",
            "scalar",
            "--json",
        ],
        None,
    );
    let columnar_sharded = stdout_of(
        &[
            "measure",
            "--portfolio",
            "--city",
            CITY_10K,
            "--kernel",
            "columnar",
            "--shards",
            "4",
            "--threads",
            "2",
            "--json",
        ],
        None,
    );
    assert_eq!(scalar, columnar_sharded);
}

#[test]
fn kernel_choice_never_changes_a_simulate_output_byte() {
    for scenario in ["schedule", "market"] {
        let scalar = stdout_of(
            &[
                "simulate",
                "--scenario",
                scenario,
                "--households",
                "300",
                "--kernel",
                "scalar",
                "--json",
            ],
            None,
        );
        let columnar = stdout_of(
            &[
                "simulate",
                "--scenario",
                scenario,
                "--households",
                "300",
                "--kernel",
                "columnar",
                "--json",
            ],
            None,
        );
        assert_eq!(
            scalar, columnar,
            "{scenario}: --kernel columnar must not change a single output byte"
        );
    }
}

#[test]
fn kernel_flag_works_on_file_input() {
    let template = stdout_of(&["template", "--portfolio"], None);
    let scalar = stdout_of(
        &[
            "measure",
            "--portfolio",
            "-",
            "--kernel",
            "scalar",
            "--json",
        ],
        Some(&template),
    );
    let columnar = stdout_of(
        &[
            "measure",
            "--portfolio",
            "-",
            "--kernel",
            "columnar",
            "--json",
        ],
        Some(&template),
    );
    assert_eq!(scalar, columnar);
}

#[test]
fn unknown_kernel_is_rejected() {
    let stderr = stderr_of_failure(
        &["measure", "--portfolio", "--city", "10", "--kernel", "simd"],
        None,
    );
    assert!(
        stderr.contains("unknown kernel simd"),
        "stderr names the problem: {stderr}"
    );
    assert!(
        stderr.contains("scalar, columnar or auto"),
        "stderr lists the choices: {stderr}"
    );
}

#[test]
fn kernel_without_value_is_rejected() {
    let stderr = stderr_of_failure(
        &["measure", "--portfolio", "--city", "10", "--kernel"],
        None,
    );
    assert!(
        stderr.contains("--kernel needs a value"),
        "stderr: {stderr}"
    );
    let stderr = stderr_of_failure(&["simulate", "--scenario", "market", "--kernel"], None);
    assert!(
        stderr.contains("--kernel needs a value"),
        "stderr: {stderr}"
    );
}
