//! Smoke test for the `flexctl` binary: the documented
//! `flexctl template | flexctl measure -` pipeline works end to end and
//! reports every one of the paper's eight measures, and `flexctl render -`
//! draws the figure.

use std::io::Write;
use std::process::{Command, Output, Stdio};

const ALL_EIGHT_MEASURES: [&str; 8] = [
    "Time",
    "Energy",
    "Product",
    "Vector",
    "Time-series",
    "Assignments",
    "Abs. Area",
    "Rel. Area",
];

fn flexctl(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_flexctl"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("flexctl spawns");
    if let Some(input) = stdin {
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("stdin accepts input");
    }
    child.wait_with_output().expect("flexctl terminates")
}

fn template_json() -> String {
    let out = flexctl(&["template"], None);
    assert!(out.status.success(), "flexctl template exits 0");
    String::from_utf8(out.stdout).expect("template output is UTF-8")
}

#[test]
fn template_piped_through_measure_prints_all_eight_measures() {
    let template = template_json();
    let out = flexctl(&["measure", "-"], Some(&template));
    assert!(
        out.status.success(),
        "flexctl measure - exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("measure output is UTF-8");
    for name in ALL_EIGHT_MEASURES {
        assert!(
            stdout.contains(name),
            "measure output missing {name:?}:\n{stdout}"
        );
    }
}

#[test]
fn template_piped_through_render_draws_the_figure() {
    let template = template_json();
    let out = flexctl(&["render", "-"], Some(&template));
    assert!(
        out.status.success(),
        "flexctl render - exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("render output is UTF-8");
    assert!(
        stdout.contains("start window") && stdout.contains("union area"),
        "render output shows the profile and the union area:\n{stdout}"
    );
}

#[test]
fn names_lists_a_slug_for_every_measure() {
    let out = flexctl(&["names"], None);
    assert!(out.status.success(), "flexctl names exits 0");
    let stdout = String::from_utf8(out.stdout).expect("names output is UTF-8");
    for slug in [
        "time",
        "energy",
        "product",
        "vector",
        "series",
        "assignments",
        "abs-area",
        "rel-area",
    ] {
        assert!(
            stdout.lines().any(|l| l == slug),
            "names output missing {slug:?}:\n{stdout}"
        );
    }
}

#[test]
fn measure_rejects_unknown_measure_names() {
    let template = template_json();
    let out = flexctl(&["measure", "-", "no-such-measure"], Some(&template));
    assert!(!out.status.success(), "unknown measure name is an error");
}

#[test]
fn count_reports_both_assignment_space_sizes() {
    let template = template_json();
    let out = flexctl(&["count", "-"], Some(&template));
    assert!(out.status.success(), "flexctl count - exits 0");
    let stdout = String::from_utf8(out.stdout).expect("count output is UTF-8");
    assert!(stdout.contains("unconstrained assignments"));
    assert!(stdout.contains("valid assignments"));
}
