//! Demand follows supply: schedule a district's flexible demand against a
//! renewable production trace and compare schedulers.
//!
//! Run with `cargo run --example res_scheduling`.

use flexoffers::scheduling::{
    imbalance::coverage, schedule_via_aggregation, AnnealingScheduler, EarliestStartScheduler,
    GreedyScheduler, HillClimbScheduler, Scheduler,
};
use flexoffers::workloads::res::{res_production_trace, ResTraceConfig};
use flexoffers::workloads::PopulationBuilder;
use flexoffers::GroupingParams;
use flexoffers::SchedulingProblem;

fn main() {
    // Flexible consumption only; production is the target, not a player.
    let portfolio = PopulationBuilder::new(19)
        .electric_vehicles(30)
        .dishwashers(40)
        .heat_pumps(20)
        .refrigerators(50)
        .build();
    let res = res_production_trace(&ResTraceConfig {
        days: 2,
        solar_capacity: 60,
        wind_capacity: 90,
        ..ResTraceConfig::default()
    });
    let problem = SchedulingProblem::new(portfolio.into_offers(), res.clone());

    println!(
        "{} flex-offers vs a {}-slot RES trace (total production {})",
        problem.offers().len(),
        res.len(),
        res.sum()
    );
    println!(
        "\n{:<28} {:>10} {:>10} {:>8} {:>9}",
        "scheduler", "L1", "L2", "peak", "coverage"
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(EarliestStartScheduler),
        Box::new(GreedyScheduler::new()),
        Box::new(HillClimbScheduler::new(42, 2_000)),
        Box::new(AnnealingScheduler::new(42, 2_000)),
    ];
    for scheduler in schedulers {
        let schedule = scheduler.schedule(&problem).expect("feasible");
        assert!(problem.is_feasible(&schedule));
        let im = schedule.imbalance(problem.target());
        let cov = coverage(&schedule.load(), problem.target());
        println!(
            "{:<28} {:>10.1} {:>10.2} {:>8.1} {:>8.1}%",
            scheduler.name(),
            im.l1,
            im.l2,
            im.peak,
            cov * 100.0
        );
    }

    // Scenario 1's full pipeline: aggregate first, schedule the (far
    // smaller) aggregate problem, disaggregate back to the devices.
    let outcome = schedule_via_aggregation(
        &problem,
        &GroupingParams::with_tolerances(2, 2),
        &GreedyScheduler::new(),
    )
    .expect("pipeline feasible");
    assert!(problem.is_feasible(&outcome.schedule));
    let im = outcome.schedule.imbalance(problem.target());
    let cov = coverage(&outcome.schedule.load(), problem.target());
    println!(
        "{:<28} {:>10.1} {:>10.2} {:>8.1} {:>8.1}%   ({} offers -> {} aggregates, {} re-planned)",
        "aggregate+greedy pipeline",
        im.l1,
        im.l2,
        im.peak,
        cov * 100.0,
        problem.offers().len(),
        outcome.aggregates,
        outcome.unrealizable_plans,
    );

    println!(
        "\nThe gap between the baseline row and the others is what prosumer\n\
         flexibility buys the grid: the same appliances, shifted and\n\
         modulated within their flex-offers, absorb far more renewable\n\
         production (Scenario 1's motivation)."
    );
}
