//! Scenario 1: aggregate a district's flex-offers and quantify, with every
//! measure, how much flexibility each grouping tolerance preserves.
//!
//! Run with `cargo run --example district_aggregation`.

use flexoffers::aggregation::{
    aggregate_portfolio, flexibility_loss, loss_table, MeasureAwareGrouping,
};
use flexoffers::measures::VectorFlexibility;
use flexoffers::workloads::district;
use flexoffers::GroupingParams;

fn main() {
    let portfolio = district(42, 100);
    let summary = portfolio.sign_summary();
    println!(
        "district portfolio: {} flex-offers ({} consumption, {} production, {} mixed)",
        portfolio.len(),
        summary.positive,
        summary.negative,
        summary.mixed
    );
    println!();

    for (label, params) in [
        ("strict (identical shapes only)", GroupingParams::strict()),
        (
            "tolerant (est<=2, tft<=2)",
            GroupingParams::with_tolerances(2, 2),
        ),
        (
            "coarse (est<=6, tft<=8)",
            GroupingParams::with_tolerances(6, 8),
        ),
        ("single group", GroupingParams::single_group()),
    ] {
        let aggregates = aggregate_portfolio(portfolio.as_slice(), &params);
        println!(
            "grouping {label}: {} offers -> {} aggregates",
            portfolio.len(),
            aggregates.len()
        );
        println!(
            "  {:<12} {:>14} {:>14} {:>9}",
            "measure", "before", "after", "loss"
        );
        for entry in loss_table(portfolio.as_slice(), &aggregates) {
            match entry {
                Ok(report) => println!(
                    "  {:<12} {:>14.1} {:>14.1} {:>8.1}%",
                    report.measure,
                    report.before,
                    report.after,
                    report.relative_loss() * 100.0
                ),
                Err(e) => println!("  (measure unavailable: {e})"),
            }
        }
        println!();
    }

    println!(
        "Reading: coarser grouping means fewer aggregates (cheaper scheduling)\n\
         but more flexibility destroyed — the trade-off the paper's measures\n\
         exist to quantify (Scenario 1). Note how the assignment measure's\n\
         exponential skew makes its losses look catastrophic long before the\n\
         time/energy measures agree.\n"
    );

    // The paper's future work, implemented: let a measure drive the grouping.
    let vector = VectorFlexibility::default();
    println!("measure-aware grouping (vector-flexibility loss budget per merge):");
    for budget in [0.05, 0.2, 0.5] {
        let aggregates = MeasureAwareGrouping::new(&vector, budget)
            .aggregate_portfolio(portfolio.as_slice())
            .expect("measure defined on this portfolio");
        let report =
            flexibility_loss(&vector, portfolio.as_slice(), &aggregates).expect("vector totals");
        println!(
            "  budget {budget:.2}: {} aggregates, vector flexibility {:.0} -> {:.0} ({:.1}% loss)",
            aggregates.len(),
            report.before,
            report.after,
            report.relative_loss() * 100.0
        );
    }
}
