//! Quickstart: the paper's EV use case, measured by all eight measures.
//!
//! Run with `cargo run --example quickstart`.
//!
//! An electric vehicle is plugged in at 23:00 with an empty battery, needs 3
//! hours of charging, must be done by 6:00, and its owner is happy with 60 %
//! of a full charge (the introduction of Valsomatzis et al., EDBT 2015).
//! That story becomes one flex-offer; this example builds it, validates a
//! concrete charging plan against it, and prints every flexibility measure.

use flexoffers::workloads::EvCharger;
use flexoffers::{all_measures, Assignment};

fn main() {
    // The use case as a flex-offer: start window [23:00, 3:00], three
    // hourly slices of 0..10 units, total within 60-100 % of full.
    let ev = EvCharger::paper_use_case();
    println!("EV flex-offer: {ev}");
    println!(
        "  time flexibility   {} hours (start window 23:00 .. 3:00)",
        ev.time_flexibility()
    );
    println!(
        "  energy flexibility {} units (60-100 % charge band)",
        ev.energy_flexibility()
    );
    println!();

    // The scheduler of the use case starts charging at 1:00 (slot 25)
    // "because wind production will increase at that time".
    let plan = Assignment::new(25, vec![10, 10, 4]);
    match ev.check_assignment(&plan) {
        Ok(()) => println!("charging plan {plan} is valid (24 units = 80 % charge)"),
        Err(violation) => println!("charging plan rejected: {violation}"),
    }
    println!();

    // How flexible is this flex-offer, by every measure of the paper?
    println!("{:<14} {:>12}  note", "measure", "value");
    for measure in all_measures() {
        match measure.of(&ev) {
            Ok(v) => {
                let note = match measure.short_name() {
                    "Product" => "tf * ef (Definition 3)",
                    "Vector" => "||<tf, ef>||_1 (Definition 4)",
                    "Time-series" => "||f_max - f_min||_1 (Definition 7)",
                    "Assignments" => "(tf+1) * prod(width+1) (Definition 8)",
                    "Abs. Area" => "union area - cmin (Definition 10)",
                    "Rel. Area" => "2*abs / (|cmin|+|cmax|) (Definition 11)",
                    _ => "",
                };
                println!("{:<14} {v:>12.3}  {note}", measure.short_name());
            }
            Err(e) => println!("{:<14} {:>12}  {e}", measure.short_name(), "n/a"),
        }
    }

    // The number of ways this EV could be charged, exactly.
    println!();
    println!(
        "valid charging schedules |L(f)|: {}",
        ev.constrained_assignment_count()
            .expect("EV space fits in u128")
    );
    println!(
        "of {} unconstrained start/amount combinations",
        ev.unconstrained_assignment_count().expect("fits in u128")
    );
}
