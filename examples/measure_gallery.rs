//! A gallery of the paper's figures rendered in ASCII, with the measure
//! pathologies each one illustrates.
//!
//! Run with `cargo run --example measure_gallery`.

use flexoffers::area::{render_assignment, render_flexoffer, render_union};
use flexoffers::measures::{
    AbsoluteAreaFlexibility, Measure, ProductFlexibility, RelativeAreaFlexibility,
    TimeSeriesFlexibility, VectorFlexibility,
};
use flexoffers::{Assignment, FlexOffer, Slice};

fn fo(tes: i64, tls: i64, slices: &[(i64, i64)]) -> FlexOffer {
    FlexOffer::new(
        tes,
        tls,
        slices
            .iter()
            .map(|&(a, b)| Slice::new(a, b).expect("ordered"))
            .collect(),
    )
    .expect("well-formed")
}

fn main() {
    println!("=== Figure 1: the running flex-offer ===");
    let f = fo(1, 6, &[(1, 3), (2, 4), (0, 5), (0, 3)]);
    print!("{}", render_flexoffer(&f));
    println!(
        "tf = {}, ef = {}, product = {}\n",
        f.time_flexibility(),
        f.energy_flexibility(),
        ProductFlexibility.of(&f).expect("defined")
    );

    println!("=== Figure 4: the area of one assignment (Example 7) ===");
    let fa = Assignment::new(1, vec![2, 1, 3]);
    print!("{}", render_assignment(&fa));
    println!();

    println!("=== Figures 5 & 6: area measures see size; f4 vs f5 ===");
    let f4 = fo(0, 4, &[(2, 2)]);
    let f5 = fo(0, 4, &[(1, 1), (2, 2)]);
    print!("{}", render_union(&f4));
    print!("{}", render_union(&f5));
    println!(
        "abs(f4) = {}, abs(f5) = {} — equal absolute flexibility;",
        AbsoluteAreaFlexibility::new().of(&f4).expect("consumption"),
        AbsoluteAreaFlexibility::new().of(&f5).expect("consumption"),
    );
    println!(
        "rel(f4) = {:.3}, rel(f5) = {:.3} — relatively, the smaller f4 is more flexible\n",
        RelativeAreaFlexibility::new().of(&f4).expect("consumption"),
        RelativeAreaFlexibility::new().of(&f5).expect("consumption"),
    );

    println!("=== Figure 7: a mixed flex-offer (vehicle-to-grid shape) ===");
    let f6 = fo(0, 2, &[(-1, 2), (-4, -1), (-3, 1)]);
    print!("{}", render_union(&f6));
    println!(
        "assignments = {}, vector = {:.3}; the area measures overreach here\n\
         (Definition 10 literally gives {}, counting committed production as\n\
         flexibility) — Table 1's mixed 'No'.\n",
        f6.unconstrained_assignment_count().expect("small"),
        VectorFlexibility::default().of(&f6).expect("defined"),
        AbsoluteAreaFlexibility::new()
            .of(&f6)
            .expect("literal policy"),
    );

    println!("=== Example 11: the product measure's blind spot ===");
    let fixed_amount = fo(2, 8, &[(5, 5)]);
    println!(
        "fx = {fixed_amount}: tf = {}, ef = {} -> product = {} but vector = {}",
        fixed_amount.time_flexibility(),
        fixed_amount.energy_flexibility(),
        ProductFlexibility.of(&fixed_amount).expect("defined"),
        VectorFlexibility::default()
            .of(&fixed_amount)
            .expect("defined"),
    );
    println!();

    println!("=== Example 13: norms cannot see time structure ===");
    let near = fo(0, 1, &[(0, 1)]);
    let far = fo(0, 10, &[(0, 1)]);
    println!(
        "series(f1)  = {} (window 0..1)\nseries(f1') = {} (window 0..10, ten-fold time flexibility, same value)",
        TimeSeriesFlexibility::default().of(&near).expect("defined"),
        TimeSeriesFlexibility::default().of(&far).expect("defined"),
    );
}
