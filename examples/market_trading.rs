//! Scenario 2: an aggregator bundles household flex-offers, trades them on
//! a spot market with a minimum lot size, and monetises their flexibility.
//!
//! Run with `cargo run --example market_trading`.

use flexoffers::market::{Aggregator, SpotMarket};
use flexoffers::workloads::price::{price_trace, PriceTraceConfig};
use flexoffers::workloads::PopulationBuilder;
use flexoffers::GroupingParams;

fn main() {
    let portfolio = PopulationBuilder::new(7)
        .electric_vehicles(40)
        .dishwashers(60)
        .heat_pumps(30)
        .refrigerators(80)
        .build();
    let prices = price_trace(&PriceTraceConfig {
        days: 2,
        ..PriceTraceConfig::default()
    });
    let market = SpotMarket::new(prices, 2.0).expect("valid market");

    println!("portfolio: {} household flex-offers", portfolio.len());
    println!("penalty price: {:.2} per unit\n", market.penalty_price());

    // Individual offers are too small for the market's 25-unit lots.
    let lonely = Aggregator::new(GroupingParams::strict(), 25);
    let outcome = lonely.run(&portfolio, &market);
    println!("without meaningful aggregation (strict grouping):");
    report(&outcome);

    // Aggregation clears the lot rule and shifts load into cheap hours.
    let bundled = Aggregator::new(GroupingParams::with_tolerances(3, 3), 25);
    let outcome = bundled.run(&portfolio, &market);
    println!("\nwith aggregation (est<=3, tft<=3):");
    report(&outcome);

    // A naive aggregator that trusts the aggregate's apparent flexibility
    // overbuys shapes its members cannot deliver.
    let naive = Aggregator::naive(GroupingParams::with_tolerances(3, 3), 25);
    let outcome = naive.run(&portfolio, &market);
    println!("\nnaive planning on the same aggregates:");
    report(&outcome);
    println!(
        "\nThe imbalance line is the market price of aggregation's\n\
         flexibility overestimation: the aggregate's slice and total sums\n\
         admit plans no member combination realises."
    );
}

fn report(outcome: &flexoffers::market::MarketOutcome) {
    println!(
        "  orders {:>3}   rejected lots {:>3}",
        outcome.orders.len(),
        outcome.rejected_lots
    );
    println!("  procurement {:>10.1}", outcome.procurement_cost);
    println!("  imbalance   {:>10.1}", outcome.imbalance_cost);
    println!("  penalty buy {:>10.1}", outcome.rejected_cost);
    println!("  total       {:>10.1}", outcome.total_cost());
    println!(
        "  baseline    {:>10.1}   savings {:>10.1} ({:.1}%)",
        outcome.baseline_cost,
        outcome.savings(),
        outcome.relative_savings() * 100.0
    );
}
