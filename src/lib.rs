//! `flexoffers` — a Rust implementation of the flex-offer energy-flexibility
//! stack around **“Measuring and Comparing Energy Flexibilities”**
//! (Valsomatzis, Hose, Pedersen, Šikšnys — EDBT/ICDT 2015 Workshops).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`model`] — flex-offers, assignments, enumeration, counting, sampling;
//! * [`measures`] — the paper's eight flexibility measures and the Table 1
//!   characteristics harness (the paper's primary contribution);
//! * [`timeseries`] — the discrete series algebra underneath;
//! * [`area`] — grid-cell area semantics (Definitions 9–10) and ASCII
//!   figure rendering;
//! * [`aggregation`] — start-alignment aggregation, grouping,
//!   flow-exact disaggregation, balance-aware grouping, loss evaluation;
//! * [`scheduling`] — baseline/greedy/hill-climbing/exhaustive schedulers
//!   against a target supply profile;
//! * [`workloads`] — seeded synthetic prosumer devices, districts, RES and
//!   price traces;
//! * [`market`] — the Scenario 2 balancing-market simulation;
//! * [`engine`] — batched, multi-threaded portfolio-scale evaluation of
//!   the measures, aggregation, and the two end-to-end scenario pipelines
//!   (schedule toward a target, trade on the balancing market), with
//!   deterministic merge order — including sharded multi-million-offer
//!   books ([`ShardedBook`]) whose per-shard workers and merge tier stay
//!   bitwise identical to the flat engine;
//! * [`serving`] — the live tier on top: an event-driven
//!   [`LiveBook`](serving::LiveBook) over per-shard incremental state
//!   (cached measure rows, baseline partials, group-key digests) answering
//!   measure/aggregate/schedule/trade queries between updates, byte-
//!   identical to a from-scratch batch rebuild;
//! * [`storage`] — durability for the serving tier: an append-only event
//!   journal (itself a replayable event script), checksummed atomic
//!   per-shard snapshots of the live cache export, and crash recovery
//!   ([`storage::recover`]) that truncates torn journal tails and
//!   preserves byte-identity at any crash point;
//! * [`net`] — the TCP front of the serving tier: request-id framed JSONL
//!   over a fixed worker pool ([`net::NetServer`]), per-query deadlines,
//!   graceful SIGTERM drain, and a recording byte-identity oracle (the
//!   wire format is specified in `docs/PROTOCOL.md`);
//! * [`cluster`] — cross-process shard workers: a supervisor
//!   ([`cluster::ClusterBook`]) that scatters mutations to one OS process
//!   per shard over stdio pipes, gathers warmed shard exports per query,
//!   merges them through the in-process engine (byte-identical answers),
//!   and repairs worker death by respawn-and-replay.
//!
//! The most common types are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use flexoffers::{all_measures, FlexOffer, Slice};
//!
//! // The paper's Figure 1 flex-offer.
//! let f = FlexOffer::new(1, 6, vec![
//!     Slice::new(1, 3)?,
//!     Slice::new(2, 4)?,
//!     Slice::new(0, 5)?,
//!     Slice::new(0, 3)?,
//! ])?;
//!
//! for measure in all_measures() {
//!     match measure.of(&f) {
//!         Ok(v) => println!("{:<12} {v:.3}", measure.short_name()),
//!         Err(e) => println!("{:<12} n/a ({e})", measure.short_name()),
//!     }
//! }
//! # Ok::<(), flexoffers::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use flexoffers_aggregation as aggregation;
pub use flexoffers_area as area;
pub use flexoffers_cluster as cluster;
pub use flexoffers_engine as engine;
pub use flexoffers_market as market;
pub use flexoffers_measures as measures;
pub use flexoffers_model as model;
pub use flexoffers_net as net;
pub use flexoffers_scheduling as scheduling;
pub use flexoffers_serving as serving;
pub use flexoffers_storage as storage;
pub use flexoffers_timeseries as timeseries;
pub use flexoffers_workloads as workloads;

pub use flexoffers_aggregation::{aggregate, Aggregate, GroupingParams};
pub use flexoffers_engine::{
    Budget, Engine, Partitioner, PortfolioReport, Scenario, ScenarioKind, ScenarioReport,
    SchedulerChoice, ShardedBook,
};
pub use flexoffers_measures::{all_measures, Measure, MeasureError, Norm};
pub use flexoffers_model::{
    Assignment, Energy, FlexOffer, FlexOfferBuilder, ModelError, Portfolio, SignClass, Slice,
    TimeSlot,
};
pub use flexoffers_scheduling::{Scheduler, SchedulingProblem};
pub use flexoffers_timeseries::Series;
