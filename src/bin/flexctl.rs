//! `flexctl` — command-line access to the flexibility measures.
//!
//! ```text
//! flexctl measure <file.json|-> [measure-name ...]   measure a flex-offer
//! flexctl measure --portfolio <file.json|->          measure a whole portfolio
//!         [--threads N] [--shards K] [--json]        (engine-parallel; sharded
//!         [measure-name ...]                         book when --shards > 1)
//! flexctl measure --portfolio --city H [--seed S]    same, over a generated
//!         [--threads N] [--shards K] [--json]        city streamed into shards
//! flexctl simulate --scenario <schedule|market>      run a scenario pipeline
//!         [--households H] [--seed S] [--threads N]  on a generated city
//!         [--shards K] [--scheduler greedy|hillclimb]
//!         [--json]
//! flexctl render  <file.json|->                      ASCII-render it
//! flexctl count   <file.json|->                      assignment-space sizes
//! flexctl names                                      list measure names
//! flexctl template [--portfolio]                     print example JSON
//! ```
//!
//! Flex-offers are read as JSON in the model crate's serde format; `-`
//! reads stdin. Portfolios are read either as `{"offers": [...]}` or as a
//! bare JSON array of flex-offers. Try
//! `flexctl template | flexctl measure -` or
//! `flexctl template --portfolio | flexctl measure --portfolio -`.
//!
//! `--shards K` partitions the book hash-by-offer-id into K shards and
//! runs the sharded pipelines; the `--json` output is byte-identical to
//! the unsharded run. `--city H` generates the portfolio instead of
//! reading a file, and combined with `--shards` it is streamed straight
//! into the shard buffers, so a million-offer city never materialises as
//! one allocation:
//! `flexctl measure --portfolio --city 296000 --shards 8 --json`.

use std::io::Read;
use std::process::ExitCode;

use flexoffers::area::{render_flexoffer, render_union};
use flexoffers::engine::{Budget, Engine};
use flexoffers::measures::{all_measures, available_names, measure_by_name, Measure};
use flexoffers::workloads::{city_stream, district, EvCharger};
use flexoffers::{
    FlexOffer, Partitioner, Portfolio, Scenario, ScenarioKind, SchedulerChoice, ShardedBook,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => run(cmd, rest),
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  flexctl measure <file.json|-> [measure-name ...]
  flexctl measure --portfolio <file.json|-> [--threads N] [--shards K] [--json]
                  [measure-name ...]
  flexctl measure --portfolio --city H [--seed S] [--threads N] [--shards K] [--json]
  flexctl simulate --scenario <schedule|market> [--households H] [--seed S]
                   [--threads N] [--shards K] [--scheduler greedy|hillclimb] [--json]
  flexctl render  <file.json|->
  flexctl count   <file.json|->
  flexctl names
  flexctl template [--portfolio]";

fn run(cmd: &str, rest: &[String]) -> ExitCode {
    match cmd {
        "names" => {
            for name in available_names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "template" => {
            if rest.iter().any(|a| a == "--portfolio") {
                // A small deterministic district: enough device variety to
                // exercise every measure, small enough to read.
                let portfolio = district(7, 2);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&portfolio).expect("model types serialize")
                );
            } else {
                let ev = EvCharger::paper_use_case();
                println!(
                    "{}",
                    serde_json::to_string_pretty(&ev).expect("model types serialize")
                );
            }
            ExitCode::SUCCESS
        }
        "simulate" => simulate(rest),
        "measure" if rest.iter().any(|a| a == "--portfolio") => measure_portfolio(rest),
        "measure" | "render" | "count" => {
            let Some(path) = rest.first() else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let fo = match load(path) {
                Ok(fo) => fo,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd {
                "measure" => measure(&fo, &rest[1..]),
                "render" => {
                    print!("{}", render_flexoffer(&fo));
                    print!("{}", render_union(&fo));
                    ExitCode::SUCCESS
                }
                _ => count(&fo),
            }
        }
        _ => {
            eprintln!("unknown command {cmd}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buffer)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn load(path: &str) -> Result<FlexOffer, String> {
    let text = read_input(path)?;
    serde_json::from_str(&text).map_err(|e| format!("parsing flex-offer JSON: {e}"))
}

fn load_portfolio(path: &str) -> Result<Portfolio, String> {
    let text = read_input(path)?;
    // A bare array of offers is accepted alongside the canonical
    // `{"offers": [...]}`; pick the parse by the leading token so errors
    // point at the format the caller actually wrote.
    if text.trim_start().starts_with('[') {
        serde_json::from_str::<Vec<FlexOffer>>(&text).map(Portfolio::from_offers)
    } else {
        serde_json::from_str::<Portfolio>(&text)
    }
    .map_err(|e| format!("parsing portfolio JSON: {e}"))
}

fn resolve_measures(names: &[String]) -> Result<Vec<Box<dyn Measure>>, String> {
    if names.is_empty() {
        return Ok(all_measures());
    }
    let mut out = Vec::new();
    for name in names {
        match measure_by_name(name) {
            Some(m) => out.push(m),
            None => return Err(format!("unknown measure {name}; see `flexctl names`")),
        }
    }
    Ok(out)
}

/// The `measure --portfolio` path: parse flags, build an engine, run one
/// batched pass — flat, or over a hash-sharded book when `--shards` is
/// given — and print the report (text or `--json`; the JSON mirror is
/// byte-identical between the flat and sharded runs).
fn measure_portfolio(rest: &[String]) -> ExitCode {
    let mut positionals: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut city: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut json = false;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--portfolio" => {}
            "--json" => json = true,
            "--threads" | "--shards" | "--city" | "--seed" => {
                let flag = arg.as_str();
                let Some(value) = args.next() else {
                    eprintln!("error: {flag} needs a value");
                    return ExitCode::FAILURE;
                };
                let Ok(n) = value.parse::<u64>() else {
                    eprintln!("error: {flag} takes a number, got {value}");
                    return ExitCode::FAILURE;
                };
                match flag {
                    "--threads" => threads = Some(n as usize),
                    "--shards" => shards = Some(n as usize),
                    "--city" => city = Some(n as usize),
                    _ => seed = Some(n),
                }
            }
            other => positionals.push(other.to_owned()),
        }
    }
    // Positionals are classified only after every flag is parsed, so the
    // meaning of `time` in `measure --portfolio time --city 10` does not
    // depend on whether it precedes or follows `--city`: with --city all
    // positionals are measure names, otherwise the first is the file.
    let (path, names): (Option<String>, Vec<String>) = if city.is_some() {
        (None, positionals)
    } else if positionals.is_empty() {
        (None, Vec::new())
    } else {
        (Some(positionals.remove(0)), positionals)
    };
    if seed.is_some() && city.is_none() {
        eprintln!("error: --seed only applies to a generated portfolio; pair it with --city");
        return ExitCode::FAILURE;
    }
    let seed = seed.unwrap_or(7);

    let budget = match threads {
        Some(n) => match Budget::with_threads(n) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Budget::detected(),
    };
    let measures = match resolve_measures(&names) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = Engine::new(budget);

    let report = match (city, path) {
        (Some(households), _) => match shards {
            Some(k) => {
                // Generated city, streamed straight into the shard
                // buffers — the full book never exists as one allocation.
                let book = match ShardedBook::collect_hashed(city_stream(seed, households), k) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if book.is_empty() {
                    eprintln!("error: empty portfolio — nothing to measure");
                    return ExitCode::FAILURE;
                }
                engine.measure_book(&book, &measures)
            }
            None => {
                // No --shards: the genuinely flat engine path, so the CI
                // byte-compare against a sharded run exercises two
                // different pipelines.
                let portfolio: Portfolio = city_stream(seed, households).collect();
                if portfolio.is_empty() {
                    eprintln!("error: empty portfolio — nothing to measure");
                    return ExitCode::FAILURE;
                }
                engine.measure_portfolio(portfolio.as_slice(), &measures)
            }
        },
        (None, Some(path)) => {
            let portfolio = match load_portfolio(&path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if portfolio.is_empty() {
                eprintln!("error: empty portfolio — nothing to measure");
                return ExitCode::FAILURE;
            }
            match shards {
                Some(k) => {
                    let book =
                        match ShardedBook::from_portfolio(portfolio, k, &Partitioner::HashById) {
                            Ok(b) => b,
                            Err(e) => {
                                eprintln!("error: {e}");
                                return ExitCode::FAILURE;
                            }
                        };
                    engine.measure_book(&book, &measures)
                }
                None => engine.measure_portfolio(portfolio.as_slice(), &measures),
            }
        }
        (None, None) => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.json()).expect("report serializes")
        );
    } else {
        print!("{}", report.render());
    }
    ExitCode::SUCCESS
}

/// The `simulate` path: parse flags, build a scenario over a generated
/// city portfolio, run it through the engine, print the report (text or
/// `--json`; the JSON mirror is deterministic across thread counts).
fn simulate(rest: &[String]) -> ExitCode {
    // ~3.4 offers per household puts the default portfolio above the
    // 10k-offer scale the engine pipelines are sized for.
    let mut households: usize = 3_000;
    let mut seed: u64 = 7;
    let mut kind: Option<ScenarioKind> = None;
    let mut scheduler = SchedulerChoice::Greedy;
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut json = false;

    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--scenario" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --scenario needs a value (schedule or market)");
                    return ExitCode::FAILURE;
                };
                match ScenarioKind::parse(value) {
                    Some(k) => kind = Some(k),
                    None => {
                        eprintln!("error: unknown scenario {value}; expected schedule or market");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--scheduler" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --scheduler needs a value (greedy or hillclimb)");
                    return ExitCode::FAILURE;
                };
                match SchedulerChoice::parse(value) {
                    Some(s) => scheduler = s,
                    None => {
                        eprintln!("error: unknown scheduler {value}; expected greedy or hillclimb");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--households" | "--seed" | "--threads" | "--shards" => {
                let flag = arg.as_str();
                let Some(value) = args.next() else {
                    eprintln!("error: {flag} needs a value");
                    return ExitCode::FAILURE;
                };
                let Ok(n) = value.parse::<u64>() else {
                    eprintln!("error: {flag} takes a number, got {value}");
                    return ExitCode::FAILURE;
                };
                match flag {
                    "--households" => households = n as usize,
                    "--seed" => seed = n,
                    "--shards" => shards = Some(n as usize),
                    _ => threads = Some(n as usize),
                }
            }
            other => {
                eprintln!("error: unknown simulate argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(kind) = kind else {
        eprintln!("error: simulate needs --scenario schedule|market\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let budget = match threads {
        Some(n) => match Budget::with_threads(n) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Budget::detected(),
    };

    let mut scenario = Scenario::city_portfolio(kind, households).with_seed(seed);
    scenario.scheduler = scheduler;
    let engine = Engine::new(budget);
    let outcome = match shards {
        Some(k) => engine.simulate_sharded(&scenario, k),
        None => engine.simulate(&scenario),
    };
    match outcome {
        Ok(report) => {
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report.json()).expect("report serializes")
                );
            } else {
                print!("{}", report.render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn measure(fo: &FlexOffer, names: &[String]) -> ExitCode {
    println!("flex-offer: {fo}");
    let measures = match resolve_measures(names) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for m in measures {
        match m.of(fo) {
            Ok(v) => println!("{:<14} {v:.6}", m.short_name()),
            Err(e) => println!("{:<14} n/a ({e})", m.short_name()),
        }
    }
    ExitCode::SUCCESS
}

fn count(fo: &FlexOffer) -> ExitCode {
    match fo.unconstrained_assignment_count() {
        Some(n) => println!("unconstrained assignments (Def. 8): {n}"),
        None => println!(
            "unconstrained assignments (Def. 8): 2^{:.1} (overflows u128)",
            fo.log2_assignment_count()
        ),
    }
    match fo.constrained_assignment_count() {
        Some(n) => println!("valid assignments |L(f)|:           {n}"),
        None => println!(
            "valid assignments |L(f)|:           ~{:.3e}",
            fo.constrained_assignment_count_f64()
        ),
    }
    ExitCode::SUCCESS
}
