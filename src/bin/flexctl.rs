//! `flexctl` — command-line access to the flexibility measures.
//!
//! ```text
//! flexctl measure <file.json|-> [measure-name ...]   measure a flex-offer
//! flexctl render  <file.json|->                      ASCII-render it
//! flexctl count   <file.json|->                      assignment-space sizes
//! flexctl names                                      list measure names
//! flexctl template                                   print an example JSON
//! ```
//!
//! Flex-offers are read as JSON in the model crate's serde format; `-`
//! reads stdin. Try `flexctl template | flexctl measure -`.

use std::io::Read;
use std::process::ExitCode;

use flexoffers::area::{render_flexoffer, render_union};
use flexoffers::measures::{all_measures, available_names, measure_by_name, Measure};
use flexoffers::workloads::EvCharger;
use flexoffers::FlexOffer;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => run(cmd, rest),
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  flexctl measure <file.json|-> [measure-name ...]
  flexctl render  <file.json|->
  flexctl count   <file.json|->
  flexctl names
  flexctl template";

fn run(cmd: &str, rest: &[String]) -> ExitCode {
    match cmd {
        "names" => {
            for name in available_names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "template" => {
            let ev = EvCharger::paper_use_case();
            println!(
                "{}",
                serde_json::to_string_pretty(&ev).expect("model types serialize")
            );
            ExitCode::SUCCESS
        }
        "measure" | "render" | "count" => {
            let Some(path) = rest.first() else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let fo = match load(path) {
                Ok(fo) => fo,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd {
                "measure" => measure(&fo, &rest[1..]),
                "render" => {
                    print!("{}", render_flexoffer(&fo));
                    print!("{}", render_union(&fo));
                    ExitCode::SUCCESS
                }
                _ => count(&fo),
            }
        }
        _ => {
            eprintln!("unknown command {cmd}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<FlexOffer, String> {
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    serde_json::from_str(&text).map_err(|e| format!("parsing flex-offer JSON: {e}"))
}

fn measure(fo: &FlexOffer, names: &[String]) -> ExitCode {
    println!("flex-offer: {fo}");
    let measures: Vec<Box<dyn Measure>> = if names.is_empty() {
        all_measures()
    } else {
        let mut out = Vec::new();
        for name in names {
            match measure_by_name(name) {
                Some(m) => out.push(m),
                None => {
                    eprintln!("unknown measure {name}; see `flexctl names`");
                    return ExitCode::FAILURE;
                }
            }
        }
        out
    };
    for m in measures {
        match m.of(fo) {
            Ok(v) => println!("{:<14} {v:.6}", m.short_name()),
            Err(e) => println!("{:<14} n/a ({e})", m.short_name()),
        }
    }
    ExitCode::SUCCESS
}

fn count(fo: &FlexOffer) -> ExitCode {
    match fo.unconstrained_assignment_count() {
        Some(n) => println!("unconstrained assignments (Def. 8): {n}"),
        None => println!(
            "unconstrained assignments (Def. 8): 2^{:.1} (overflows u128)",
            fo.log2_assignment_count()
        ),
    }
    match fo.constrained_assignment_count() {
        Some(n) => println!("valid assignments |L(f)|:           {n}"),
        None => println!(
            "valid assignments |L(f)|:           ~{:.3e}",
            fo.constrained_assignment_count_f64()
        ),
    }
    ExitCode::SUCCESS
}
