//! `flexctl` — command-line access to the flexibility measures.
//!
//! ```text
//! flexctl measure <file.json|-> [measure-name ...]   measure a flex-offer
//! flexctl measure --portfolio <file.json|->          measure a whole portfolio
//!         [--threads N] [--shards K] [--json]        (engine-parallel; sharded
//!         [--kernel scalar|columnar|auto]            book when --shards > 1)
//!         [measure-name ...]
//! flexctl measure --portfolio --city H [--seed S]    same, over a generated
//!         [--threads N] [--shards K] [--json]        city streamed into shards
//!         [--kernel scalar|columnar|auto]
//! flexctl simulate --scenario <schedule|market>      run a scenario pipeline
//!         [--city H] [--seed S] [--threads N]        on a generated city
//!         [--shards K] [--scheduler greedy|hillclimb] (--households is an
//!         [--kernel scalar|columnar|auto] [--json]    alias of --city)
//! flexctl serve --script <events.jsonl|->            replay an event stream
//!         [--shards K | --workers W] [--threads N]   through the live book;
//!         [--seed S] [--kernel scalar|columnar|auto] one JSON line per query
//!         [--batch]                                  (--workers W shards the
//!         [--journal PATH [--snapshot-every N]       book across W worker
//!          [--sync-every N]]                         OS processes)
//! flexctl serve --listen ADDR [--max-conns N]        serve the framed JSONL
//!         [--deadline-ms D] [--record PATH]          protocol over TCP
//!         [--shards K | --workers W] [--threads N]   (docs/PROTOCOL.md);
//!         [--seed S] [--kernel scalar|columnar|auto] SIGTERM/ctrl-c drains
//!         [--journal PATH [--snapshot-every N]       and snapshots cleanly
//!          [--sync-every N]]
//! flexctl bomb --addr HOST:PORT [--conns N]          load-generate against a
//!         [--events M] [--seed S]                    --listen server
//! flexctl recover --journal PATH [--shards K]        recover a killed serve
//!         [--threads N] [--seed S]                   and answer the four
//!         [--kernel scalar|columnar|auto]            query kinds
//! flexctl events --city H [--seed S] [--churn PCT]   generate such a script
//!         [--queries N]                              from the city workload
//! flexctl render  <file.json|->                      ASCII-render it
//! flexctl count   <file.json|->                      assignment-space sizes
//! flexctl names                                      list measure names
//! flexctl template [--portfolio]                     print example JSON
//! ```
//!
//! Flex-offers are read as JSON in the model crate's serde format; `-`
//! reads stdin. Portfolios are read either as `{"offers": [...]}` or as a
//! bare JSON array of flex-offers. Try
//! `flexctl template | flexctl measure -` or
//! `flexctl template --portfolio | flexctl measure --portfolio -`.
//!
//! `--shards K` partitions the book hash-by-offer-id into K shards and
//! runs the sharded pipelines; the `--json` output is byte-identical to
//! the unsharded run. `--city H` generates the portfolio instead of
//! reading a file, and combined with `--shards` it is streamed straight
//! into the shard buffers, so a million-offer city never materialises as
//! one allocation:
//! `flexctl measure --portfolio --city 296000 --shards 8 --json`.
//!
//! `--threads N` is one *shared* budget, not per-shard: with `--shards K`
//! each shard worker runs on `N / K` threads, floored at 1, so `K > N`
//! degrades every shard worker to sequential instead of erroring (and
//! results never change — the budget split is throughput-only). `--kernel`
//! picks the measure/baseline kernel implementation: `scalar` is the
//! per-offer prepared loop, `columnar` the struct-of-arrays batch kernels,
//! and the default `auto` picks columnar whenever every requested measure
//! has a columnar form. All three produce bitwise-identical output.
//!
//! `serve` replays a JSONL event script (see `flexctl events` and the
//! serving crate's event schema: one `{"event": "add|update|remove|query",
//! ...}` object per line) through the live serving tier and prints one
//! deterministic JSON line per query. `--batch` answers every query by
//! rebuilding the portfolio from scratch through the flat engine instead —
//! the outputs are byte-identical, which CI `cmp`s.
//!
//! `serve --journal PATH` makes the run durable: every mutation is
//! appended to the journal (itself a replayable serve script) *before* it
//! is applied, the journal is fsynced every `--sync-every` events (default
//! 64), and a checksummed snapshot of the live state lands next to the
//! journal every `--snapshot-every` mutations and at clean shutdown. After
//! a crash, `flexctl recover --journal PATH` rebuilds the book from the
//! latest valid snapshot plus the journal suffix (a torn final line is
//! truncated, never an error), prints a recovery summary to stderr, and
//! answers the four query kinds in wire order on stdout — byte-identical
//! to what an uninterrupted run would have answered.
//!
//! `serve --workers W` runs the book as W shard worker OS processes
//! behind a supervisor (`flexoffers::cluster`): mutations scatter to the
//! owning worker over stdio pipes, queries gather per-shard exports and
//! merge them through the in-process engine, so the answers stay
//! byte-identical to plain `serve` at any workers × threads × kernel. A
//! worker that dies is respawned and replayed invisibly (watch for
//! `cluster worker W respawned` on stderr). `--workers` *is* the shard
//! count, so it excludes `--shards`; it composes with `--script`,
//! `--listen`, `--journal`, `--record` and `--deadline-ms` alike. The
//! workers are spawned from the current `flexctl` executable (an internal
//! `shard-worker` subcommand speaks the supervisor protocol on stdio).
//!
//! `serve --listen ADDR` swaps the script for a TCP socket: the same
//! events arrive framed as `{"id":…,"event":{…}}` request lines over any
//! number of connections (the wire spec is `docs/PROTOCOL.md`), answered
//! queries print to stdout exactly as `--script` would, and `--record
//! PATH` writes the serialized history as a canonical script — replaying
//! that record through `serve --script --batch` reproduces the answers
//! byte-for-byte, which CI asserts. `--max-conns` sizes the worker pool,
//! `--deadline-ms` bounds each query's answer wait (expiries return a
//! structured `deadline` error), and SIGTERM/ctrl-c drains in-flight
//! requests before the durable sink's final sync + snapshot. `flexctl
//! bomb` is the matching load generator: `--conns` concurrent connections
//! each sending `--events` add/update/remove/query requests, reporting
//! throughput and latency percentiles.

use std::io::{Read, Write};
use std::process::ExitCode;

use flexoffers::area::{render_flexoffer, render_union};
use flexoffers::cluster::{ClusterBook, DurableCluster, WorkerSpec};
use flexoffers::engine::{Budget, Engine, Kernel};
use flexoffers::measures::{all_measures, available_names, measure_by_name, Measure};
use flexoffers::net::{percentile, signal, NetClient, NetConfig, NetServer, Reply};
use flexoffers::serving::batch::BatchBook;
use flexoffers::serving::{
    parse_script, parse_script_from, DurabilityConfig, Event, LiveServer, QueryKind, ServeConfig,
};
use flexoffers::storage::{recover as recover_book, DurableBook, RecoveryReport};
use flexoffers::workloads::{city_stream, district, event_stream, event_stream_len, EvCharger};
use flexoffers::{
    FlexOffer, Partitioner, Portfolio, Scenario, ScenarioKind, SchedulerChoice, ShardedBook,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => run(cmd, rest),
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  flexctl measure <file.json|-> [measure-name ...]
  flexctl measure --portfolio <file.json|-> [--threads N] [--shards K]
                  [--kernel scalar|columnar|auto] [--json] [measure-name ...]
  flexctl measure --portfolio --city H [--seed S] [--threads N] [--shards K]
                  [--kernel scalar|columnar|auto] [--json]
  flexctl simulate --scenario <schedule|market> [--city H] [--seed S]
                   [--threads N] [--shards K] [--scheduler greedy|hillclimb]
                   [--kernel scalar|columnar|auto] [--json]
  flexctl serve --script <events.jsonl|-> [--shards K | --workers W]
                [--threads N] [--seed S] [--kernel scalar|columnar|auto]
                [--batch] [--journal PATH [--snapshot-every N] [--sync-every N]]
  flexctl serve --listen ADDR [--max-conns N] [--deadline-ms D] [--record PATH]
                [--shards K | --workers W] [--threads N] [--seed S]
                [--kernel scalar|columnar|auto]
                [--journal PATH [--snapshot-every N] [--sync-every N]]
  flexctl bomb --addr HOST:PORT [--conns N] [--events M] [--seed S]
  flexctl recover --journal PATH [--shards K] [--threads N] [--seed S]
                  [--kernel scalar|columnar|auto]
  flexctl events --city H [--seed S] [--churn PCT] [--queries N]
  flexctl render  <file.json|->
  flexctl count   <file.json|->
  flexctl names
  flexctl template [--portfolio]

--threads is one shared budget: with --shards K each shard worker gets
N / K threads, floored at 1 (K > N degrades shard workers to sequential,
it never errors). --kernel selects the measure/baseline kernel (default
auto = columnar whenever every requested measure has a columnar form);
scalar, columnar and auto produce bitwise-identical output.

serve flag combinations: --script and --listen are exclusive modes — give
exactly one. --batch applies only to --script (the from-scratch oracle);
it excludes --journal (nothing durable to resume), --shards (the oracle
is deliberately the flat engine) and --workers. --record, --max-conns and
--deadline-ms apply only to --listen. --journal composes with --script
and --listen alike; --snapshot-every/--sync-every need --journal, and
both take N >= 1 (--sync-every N fsyncs every Nth mutation, 1 = every
mutation; --snapshot-every N snapshots every Nth mutation — omit it for
shutdown-only snapshots). --workers W (W >= 1) runs the book as W shard
worker OS processes; it excludes --shards (the worker count is the shard
count) and composes with every other serve flag. --shards, --threads,
--seed and --kernel apply to every serve mode (except --shards under
--batch and --workers, as above).";

fn run(cmd: &str, rest: &[String]) -> ExitCode {
    match cmd {
        "names" => {
            for name in available_names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "template" => {
            if rest.iter().any(|a| a == "--portfolio") {
                // A small deterministic district: enough device variety to
                // exercise every measure, small enough to read.
                let portfolio = district(7, 2);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&portfolio).expect("model types serialize")
                );
            } else {
                let ev = EvCharger::paper_use_case();
                println!(
                    "{}",
                    serde_json::to_string_pretty(&ev).expect("model types serialize")
                );
            }
            ExitCode::SUCCESS
        }
        // Internal (not in USAGE): the shard-worker loop `serve --workers`
        // spawns via the current executable. Speaks the supervisor wire
        // protocol on stdin/stdout; useless interactively.
        "shard-worker" => match flexoffers::cluster::run_stdio_worker() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: shard worker io: {e}");
                ExitCode::FAILURE
            }
        },
        "simulate" => simulate(rest),
        "serve" => serve(rest),
        "recover" => recover(rest),
        "events" => events(rest),
        "bomb" => bomb(rest),
        "measure" if rest.iter().any(|a| a == "--portfolio") => measure_portfolio(rest),
        "measure" | "render" | "count" => {
            let Some(path) = rest.first() else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let fo = match load(path) {
                Ok(fo) => fo,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd {
                "measure" => measure(&fo, &rest[1..]),
                "render" => {
                    print!("{}", render_flexoffer(&fo));
                    print!("{}", render_union(&fo));
                    ExitCode::SUCCESS
                }
                _ => count(&fo),
            }
        }
        _ => {
            eprintln!("unknown command {cmd}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buffer)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn load(path: &str) -> Result<FlexOffer, String> {
    let text = read_input(path)?;
    serde_json::from_str(&text).map_err(|e| format!("parsing flex-offer JSON: {e}"))
}

fn load_portfolio(path: &str) -> Result<Portfolio, String> {
    let text = read_input(path)?;
    // A bare array of offers is accepted alongside the canonical
    // `{"offers": [...]}`; pick the parse by the leading token so errors
    // point at the format the caller actually wrote.
    if text.trim_start().starts_with('[') {
        serde_json::from_str::<Vec<FlexOffer>>(&text).map(Portfolio::from_offers)
    } else {
        serde_json::from_str::<Portfolio>(&text)
    }
    .map_err(|e| format!("parsing portfolio JSON: {e}"))
}

/// Parses the value of a numeric flag out of the argument iterator — the
/// one implementation behind every `--threads/--shards/--city/--seed/...`
/// across the subcommands, so the error wording cannot drift.
fn count_flag(flag: &str, args: &mut std::slice::Iter<'_, String>) -> Result<u64, String> {
    let Some(value) = args.next() else {
        return Err(format!("{flag} needs a value"));
    };
    value
        .parse::<u64>()
        .map_err(|_| format!("{flag} takes a number, got {value}"))
}

/// The engine budget for an optional `--threads` value.
fn budget_for(threads: Option<usize>) -> Result<Budget, String> {
    match threads {
        Some(n) => Budget::with_threads(n).map_err(|e| e.to_string()),
        None => Ok(Budget::detected()),
    }
}

/// Parses the value of a `--kernel` flag — the one spelling across
/// `measure`/`simulate`/`serve`.
fn kernel_flag(args: &mut std::slice::Iter<'_, String>) -> Result<Kernel, String> {
    let Some(value) = args.next() else {
        return Err("--kernel needs a value (scalar, columnar or auto)".to_owned());
    };
    Kernel::parse(value)
        .ok_or_else(|| format!("unknown kernel {value}; expected scalar, columnar or auto"))
}

/// A loaded portfolio, flat or already partitioned into a sharded book.
enum LoadedBook {
    Flat(Portfolio),
    Book(ShardedBook),
}

impl LoadedBook {
    fn is_empty(&self) -> bool {
        match self {
            LoadedBook::Flat(p) => p.is_empty(),
            LoadedBook::Book(b) => b.is_empty(),
        }
    }
}

/// The one city-loading path behind `measure --portfolio --city` and
/// `simulate`: generate the seeded city and either collect it flat or
/// stream it straight into hash-partitioned shard buffers (a
/// million-offer city never materialises as one allocation).
fn city_book(seed: u64, households: usize, shards: Option<usize>) -> Result<LoadedBook, String> {
    match shards {
        Some(k) => ShardedBook::collect_hashed(city_stream(seed, households), k)
            .map(LoadedBook::Book)
            .map_err(|e| e.to_string()),
        None => Ok(LoadedBook::Flat(city_stream(seed, households).collect())),
    }
}

/// The file-loading counterpart of [`city_book`].
fn file_book(path: &str, shards: Option<usize>) -> Result<LoadedBook, String> {
    let portfolio = load_portfolio(path)?;
    match shards {
        Some(k) => ShardedBook::from_portfolio(portfolio, k, &Partitioner::HashById)
            .map(LoadedBook::Book)
            .map_err(|e| e.to_string()),
        None => Ok(LoadedBook::Flat(portfolio)),
    }
}

fn resolve_measures(names: &[String]) -> Result<Vec<Box<dyn Measure>>, String> {
    if names.is_empty() {
        return Ok(all_measures());
    }
    let mut out = Vec::new();
    for name in names {
        match measure_by_name(name) {
            Some(m) => out.push(m),
            None => return Err(format!("unknown measure {name}; see `flexctl names`")),
        }
    }
    Ok(out)
}

/// The `measure --portfolio` path: parse flags, build an engine, run one
/// batched pass — flat, or over a hash-sharded book when `--shards` is
/// given — and print the report (text or `--json`; the JSON mirror is
/// byte-identical between the flat and sharded runs).
fn measure_portfolio(rest: &[String]) -> ExitCode {
    let mut positionals: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut city: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut kernel = Kernel::Auto;
    let mut json = false;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--portfolio" => {}
            "--json" => json = true,
            "--kernel" => {
                kernel = match kernel_flag(&mut args) {
                    Ok(k) => k,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            flag @ ("--threads" | "--shards" | "--city" | "--seed") => {
                let n = match count_flag(flag, &mut args) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match flag {
                    "--threads" => threads = Some(n as usize),
                    "--shards" => shards = Some(n as usize),
                    "--city" => city = Some(n as usize),
                    _ => seed = Some(n),
                }
            }
            other => positionals.push(other.to_owned()),
        }
    }
    // Positionals are classified only after every flag is parsed, so the
    // meaning of `time` in `measure --portfolio time --city 10` does not
    // depend on whether it precedes or follows `--city`: with --city all
    // positionals are measure names, otherwise the first is the file.
    let (path, names): (Option<String>, Vec<String>) = if city.is_some() {
        (None, positionals)
    } else if positionals.is_empty() {
        (None, Vec::new())
    } else {
        (Some(positionals.remove(0)), positionals)
    };
    if seed.is_some() && city.is_none() {
        eprintln!("error: --seed only applies to a generated portfolio; pair it with --city");
        return ExitCode::FAILURE;
    }
    let seed = seed.unwrap_or(7);

    let budget = match budget_for(threads) {
        Ok(b) => b.with_kernel(kernel),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let measures = match resolve_measures(&names) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = Engine::new(budget);

    // One loading helper for both sources (city generation streams into
    // shard buffers when sharded; without --shards the genuinely flat
    // engine path runs, so the CI byte-compare against a sharded run
    // exercises two different pipelines).
    let loaded = match (city, path) {
        (Some(households), _) => city_book(seed, households, shards),
        (None, Some(path)) => file_book(&path, shards),
        (None, None) => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let report = match loaded {
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        Ok(loaded) if loaded.is_empty() => {
            eprintln!("error: empty portfolio — nothing to measure");
            return ExitCode::FAILURE;
        }
        Ok(LoadedBook::Flat(portfolio)) => {
            engine.measure_portfolio(portfolio.as_slice(), &measures)
        }
        Ok(LoadedBook::Book(book)) => engine.measure_book(&book, &measures),
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.json()).expect("report serializes")
        );
    } else {
        print!("{}", report.render());
    }
    ExitCode::SUCCESS
}

/// The `simulate` path: parse flags, generate the city portfolio through
/// the same loading helper `measure --portfolio --city` uses (`--city` and
/// `--households` name the same knob), run the scenario through the
/// engine, print the report (text or `--json`; the JSON mirror is
/// deterministic across thread counts and shard counts).
fn simulate(rest: &[String]) -> ExitCode {
    // ~3.4 offers per household puts the default portfolio above the
    // 10k-offer scale the engine pipelines are sized for.
    let mut households: Option<usize> = None;
    let mut city: Option<usize> = None;
    let mut seed: u64 = 7;
    let mut kind: Option<ScenarioKind> = None;
    let mut scheduler = SchedulerChoice::Greedy;
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut kernel = Kernel::Auto;
    let mut json = false;

    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--kernel" => {
                kernel = match kernel_flag(&mut args) {
                    Ok(k) => k,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--scenario" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --scenario needs a value (schedule or market)");
                    return ExitCode::FAILURE;
                };
                match ScenarioKind::parse(value) {
                    Some(k) => kind = Some(k),
                    None => {
                        eprintln!("error: unknown scenario {value}; expected schedule or market");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--scheduler" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --scheduler needs a value (greedy or hillclimb)");
                    return ExitCode::FAILURE;
                };
                match SchedulerChoice::parse(value) {
                    Some(s) => scheduler = s,
                    None => {
                        eprintln!("error: unknown scheduler {value}; expected greedy or hillclimb");
                        return ExitCode::FAILURE;
                    }
                }
            }
            flag @ ("--city" | "--households" | "--seed" | "--threads" | "--shards") => {
                let n = match count_flag(flag, &mut args) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match flag {
                    "--city" => city = Some(n as usize),
                    "--households" => households = Some(n as usize),
                    "--seed" => seed = n,
                    "--shards" => shards = Some(n as usize),
                    _ => threads = Some(n as usize),
                }
            }
            other => {
                eprintln!("error: unknown simulate argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(kind) = kind else {
        eprintln!("error: simulate needs --scenario schedule|market\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let households = match (city, households) {
        (Some(_), Some(_)) => {
            eprintln!("error: --city and --households name the same knob; give one");
            return ExitCode::FAILURE;
        }
        (Some(h), None) | (None, Some(h)) => h,
        (None, None) => 3_000,
    };
    let budget = match budget_for(threads) {
        Ok(b) => b.with_kernel(kernel),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut scenario = Scenario::city_portfolio(kind, households).with_seed(seed);
    scenario.scheduler = scheduler;
    let engine = Engine::new(budget);
    let outcome = match city_book(seed, households, shards) {
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        Ok(LoadedBook::Flat(portfolio)) => engine.simulate_portfolio(&scenario, &portfolio),
        Ok(LoadedBook::Book(book)) => engine.simulate_book(&scenario, &book),
    };
    match outcome {
        Ok(report) => {
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report.json()).expect("report serializes")
                );
            } else {
                print!("{}", report.render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `serve` path: parse and statically validate a JSONL event script,
/// then replay it — through the live mpsc serving loop (default), or
/// through the from-scratch batch oracle (`--batch`). Every query prints
/// one JSON line; the two modes are byte-identical.
fn serve(rest: &[String]) -> ExitCode {
    let mut script: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut record: Option<String> = None;
    let mut max_conns: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut shards: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut kernel = Kernel::Auto;
    let mut batch = false;
    let mut journal: Option<String> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut sync_every: Option<u64> = None;

    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batch" => batch = true,
            "--kernel" => {
                kernel = match kernel_flag(&mut args) {
                    Ok(k) => k,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--script" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --script needs a path (or - for stdin)");
                    return ExitCode::FAILURE;
                };
                script = Some(value.clone());
            }
            "--listen" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --listen needs an address (e.g. 127.0.0.1:7070)");
                    return ExitCode::FAILURE;
                };
                listen = Some(value.clone());
            }
            "--record" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --record needs a path");
                    return ExitCode::FAILURE;
                };
                record = Some(value.clone());
            }
            "--journal" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --journal needs a path");
                    return ExitCode::FAILURE;
                };
                journal = Some(value.clone());
            }
            flag @ ("--shards" | "--workers" | "--threads" | "--seed" | "--snapshot-every"
            | "--sync-every" | "--max-conns" | "--deadline-ms") => {
                let n = match count_flag(flag, &mut args) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match flag {
                    "--shards" => shards = Some(n as usize),
                    "--workers" => workers = Some(n as usize),
                    "--threads" => threads = Some(n as usize),
                    "--snapshot-every" => snapshot_every = Some(n),
                    "--sync-every" => sync_every = Some(n),
                    "--max-conns" => max_conns = Some(n as usize),
                    "--deadline-ms" => deadline_ms = Some(n),
                    _ => seed = Some(n),
                }
            }
            other => {
                eprintln!("error: unknown serve argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if script.is_some() && listen.is_some() {
        eprintln!("error: --script and --listen are exclusive serve modes; give exactly one");
        return ExitCode::FAILURE;
    }
    if batch && listen.is_some() {
        // The batch oracle replays a finished script; a live socket has no
        // script until it is recorded (serve --listen --record, then
        // replay that through --script --batch).
        eprintln!("error: --batch does not apply to --listen (record a session with --record and replay it through --script --batch)");
        return ExitCode::FAILURE;
    }
    if listen.is_none() && (record.is_some() || max_conns.is_some() || deadline_ms.is_some()) {
        eprintln!("error: --record/--max-conns/--deadline-ms need --listen ADDR");
        return ExitCode::FAILURE;
    }
    if batch && journal.is_some() {
        // The batch oracle rebuilds from scratch per query; journaling it
        // would record a history no recovery could resume.
        eprintln!("error: --journal does not apply to --batch (durability is the live tier's)");
        return ExitCode::FAILURE;
    }
    if journal.is_none() && (snapshot_every.is_some() || sync_every.is_some()) {
        eprintln!("error: --snapshot-every/--sync-every need --journal PATH");
        return ExitCode::FAILURE;
    }
    if batch && shards.is_some() {
        // The batch oracle is deliberately the *flat* engine; silently
        // accepting --shards would mislabel what was measured.
        eprintln!(
            "error: --shards does not apply to --batch (the batch oracle is the flat engine)"
        );
        return ExitCode::FAILURE;
    }
    if batch && workers.is_some() {
        eprintln!(
            "error: --workers does not apply to --batch (the batch oracle is the flat in-process engine)"
        );
        return ExitCode::FAILURE;
    }
    if workers.is_some() && shards.is_some() {
        eprintln!(
            "error: --workers and --shards are exclusive (the worker count is the cluster's shard count)"
        );
        return ExitCode::FAILURE;
    }
    if workers == Some(0) {
        eprintln!("error: --workers must be at least 1 (each worker is one shard process)");
        return ExitCode::FAILURE;
    }
    if sync_every == Some(0) {
        eprintln!("error: --sync-every must be at least 1 (1 fsyncs every mutation)");
        return ExitCode::FAILURE;
    }
    if snapshot_every == Some(0) {
        eprintln!(
            "error: --snapshot-every must be at least 1 (omit it for shutdown-only snapshots)"
        );
        return ExitCode::FAILURE;
    }
    let shards = shards.unwrap_or(1);
    if script.is_none() && listen.is_none() {
        eprintln!("error: serve needs --script <events.jsonl|-> or --listen ADDR\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let budget = match budget_for(threads) {
        Ok(b) => b.with_kernel(kernel),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = ServeConfig::default();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    if let Some(journal) = journal {
        let mut durability = DurabilityConfig::new(journal);
        durability.snapshot_every = snapshot_every;
        if let Some(n) = sync_every {
            durability.sync_every = n;
        }
        config.durability = Some(durability);
    }
    let engine = Engine::new(budget);

    if let Some(addr) = listen {
        let net_config = NetConfig {
            max_conns: max_conns.unwrap_or(4).max(1),
            deadline: deadline_ms.map(std::time::Duration::from_millis),
            record: record.map(std::path::PathBuf::from),
        };
        if let Some(workers) = workers {
            let spec = match shard_worker_spec() {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if config.durability.is_some() {
                let (durable, report) = match DurableCluster::open(config, budget, workers, spec) {
                    Ok(opened) => opened,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                report_resume(&report);
                let live_ids = durable.cluster().live_ids();
                let next_id = durable.cluster().next_id();
                return listen_serve(
                    &addr,
                    net_config,
                    LiveServer::spawn_sink(durable),
                    live_ids,
                    next_id,
                );
            }
            let cluster = match ClusterBook::spawn(config, budget, workers, spec) {
                Ok(cluster) => cluster,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            return listen_serve(
                &addr,
                net_config,
                LiveServer::spawn_sink(cluster),
                Vec::new(),
                0,
            );
        }
        if config.durability.is_some() {
            let (durable, report) = match DurableBook::open(config, shards, engine) {
                Ok(opened) => opened,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            report_resume(&report);
            let live_ids = durable.book().live_ids();
            let next_id = durable.book().next_id();
            return listen_serve(
                &addr,
                net_config,
                LiveServer::spawn_sink(durable),
                live_ids,
                next_id,
            );
        }
        let handle = match LiveServer::spawn(config, shards, engine) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        return listen_serve(&addr, net_config, handle, Vec::new(), 0);
    }

    let script = script.expect("checked above");
    let text = match read_input(&script) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if batch {
        let events = match parse_script(&text) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut book = BatchBook::new(config, engine);
        for event in events {
            match book.apply(event) {
                Ok(Some(line)) => println!("{line}"),
                Ok(None) => {}
                Err(e) => {
                    // Unreachable for a validated script; kept as a guard.
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    // The cluster paths mirror the in-process ones below: same serving
    // loop, same script validation against recovered state — the sink is a
    // supervisor over worker processes instead of a book in this process.
    if let Some(workers) = workers {
        let spec = match shard_worker_spec() {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if config.durability.is_some() {
            let (durable, report) = match DurableCluster::open(config, budget, workers, spec) {
                Ok(opened) => opened,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            report_resume(&report);
            let events = match parse_script_from(
                &text,
                durable.cluster().live_ids(),
                durable.cluster().next_id(),
            ) {
                Ok(events) => events,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            return drive(LiveServer::spawn_sink(durable), events);
        }
        let events = match parse_script(&text) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cluster = match ClusterBook::spawn(config, budget, workers, spec) {
            Ok(cluster) => cluster,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        return drive(LiveServer::spawn_sink(cluster), events);
    }

    // The durable and memory-only paths ride the same serving loop; the
    // only difference is which sink the loop drives — and that a durable
    // script is validated against the *recovered* state, so a resumed
    // journal accepts updates of ids the prior run added.
    if config.durability.is_some() {
        let (durable, report) = match DurableBook::open(config, shards, engine) {
            Ok(opened) => opened,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        report_resume(&report);
        let events =
            match parse_script_from(&text, durable.book().live_ids(), durable.book().next_id()) {
                Ok(events) => events,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
        return drive(LiveServer::spawn_sink(durable), events);
    }

    let events = match parse_script(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match LiveServer::spawn(config, shards, engine) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    drive(handle, events)
}

/// The spec `serve --workers` spawns shard workers from: this same
/// `flexctl` executable re-invoked with the internal `shard-worker`
/// subcommand, so a deployed cluster is still a single binary.
fn shard_worker_spec() -> Result<WorkerSpec, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the flexctl executable to spawn shard workers: {e}"))?;
    Ok(WorkerSpec::new(exe).arg("shard-worker"))
}

/// Announces a resumed journal on stderr (silent for a fresh one) — shared
/// by every durable serve path, in-process and cluster alike.
fn report_resume(report: &RecoveryReport) {
    if report.journal_events > 0 {
        eprintln!(
            "resumed journal at seq {} ({} replayed on top of {})",
            report.journal_events,
            report.replayed,
            match report.snapshot_seq {
                Some(seq) => format!("snapshot seq {seq}"),
                None => "the empty book".to_owned(),
            }
        );
    }
}

/// Feeds a parsed script through a spawned serving loop, printing one line
/// per query, and reports how the loop shut down.
fn drive<E: std::fmt::Display>(
    mut handle: flexoffers::serving::LiveHandle<E>,
    events: Vec<Event>,
) -> ExitCode {
    for event in events {
        match handle.send(event) {
            Ok(Some(line)) => println!("{line}"),
            Ok(None) => {}
            Err(_) => break, // the loop died; shutdown() reports why
        }
    }
    match handle.shutdown() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `serve --listen` path: bind the TCP front over a spawned serving
/// loop, install the SIGINT/SIGTERM latch, and serve until a signal fires.
/// Answer lines stream to stdout in serialization order (the bytes a
/// `--record` replay through `--script` reproduces); the bound address,
/// lifecycle notes and the final summary go to stderr.
fn listen_serve<E: std::fmt::Debug + std::fmt::Display + Send + 'static>(
    addr: &str,
    config: NetConfig,
    handle: flexoffers::serving::LiveHandle<E>,
    live_ids: Vec<u64>,
    next_id: u64,
) -> ExitCode {
    let server = match NetServer::bind(addr, config, handle, live_ids, next_id) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Flushed line-by-line so a harness can scrape the bound port even
    // when --listen 127.0.0.1:0 picked it.
    eprintln!("listening on {}", server.local_addr());
    if !signal::install() {
        eprintln!(
            "warning: no SIGINT/SIGTERM handler on this platform; graceful drain unavailable"
        );
    }
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                if signal::fired() {
                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        })
    };
    let result = server.run(&stop, std::io::stdout());
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = watcher.join();
    match result {
        Ok(summary) => {
            eprintln!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// What one `bomb` connection observed: per-request wall latencies plus
/// how many replies came back as protocol errors.
struct BombReport {
    latencies_ms: Vec<f64>,
    errors: u64,
}

/// The `bomb` load generator: N concurrent connections, each sending a
/// deterministic seeded mix of adds, updates/removes of its own offers,
/// and queries, timing every request round trip.
fn bomb(rest: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut conns: usize = 4;
    let mut events_per_conn: u64 = 256;
    let mut seed: u64 = 7;

    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --addr needs HOST:PORT");
                    return ExitCode::FAILURE;
                };
                addr = Some(value.clone());
            }
            flag @ ("--conns" | "--events" | "--seed") => {
                let n = match count_flag(flag, &mut args) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match flag {
                    "--conns" => conns = n as usize,
                    "--events" => events_per_conn = n,
                    _ => seed = n,
                }
            }
            other => {
                eprintln!("error: unknown bomb argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: bomb needs --addr HOST:PORT\n{USAGE}");
        return ExitCode::FAILURE;
    };
    if conns == 0 || events_per_conn == 0 {
        eprintln!("error: --conns and --events must be at least 1");
        return ExitCode::FAILURE;
    }

    let started = std::time::Instant::now();
    let reports: Vec<Result<BombReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    bomb_connection(&addr, seed.wrapping_add(c as u64), events_per_conn)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("connection thread panicked".to_owned()))
            })
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut errors = 0u64;
    let mut failed = false;
    for (c, report) in reports.into_iter().enumerate() {
        match report {
            Ok(report) => {
                latencies.extend(report.latencies_ms);
                errors += report.errors;
            }
            Err(e) => {
                eprintln!("error: connection {c}: {e}");
                failed = true;
            }
        }
    }
    let requests = latencies.len();
    let rate = if elapsed > 0.0 {
        requests as f64 / elapsed
    } else {
        0.0
    };
    println!(
        "bomb: {conns} conns x {events_per_conn} events -> {requests} requests in {elapsed:.3}s ({rate:.0} req/s), {errors} error replies"
    );
    for (label, p) in [("p50", 50.0), ("p99", 99.0), ("p999", 99.9)] {
        if let Some(ms) = percentile(&latencies, p) {
            println!("  {label} {ms:.3} ms");
        }
    }
    if failed || errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One bomb connection: adds dominate; every 8th request updates and
/// every 12th removes an offer this connection itself added (so ids are
/// always valid regardless of interleaving); every 16th queries, cycling
/// the four kinds in wire order.
fn bomb_connection(addr: &str, seed: u64, events: u64) -> Result<BombReport, String> {
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let offers: Vec<FlexOffer> = city_stream(seed, 8).collect();
    let mut owned: Vec<u64> = Vec::new();
    let mut latencies_ms = Vec::with_capacity(events as usize);
    let mut errors = 0u64;
    let mut queries = 0usize;
    for i in 0..events {
        let event = if i % 16 == 9 {
            let kind = QueryKind::all()[queries % 4];
            queries += 1;
            Event::Query(kind)
        } else if i % 8 == 5 && !owned.is_empty() {
            let id = owned[i as usize % owned.len()];
            let offer = offers[(i as usize + 3) % offers.len()].clone();
            Event::Update { id, offer }
        } else if i % 12 == 7 && !owned.is_empty() {
            let id = owned.remove(i as usize % owned.len());
            Event::Remove { id }
        } else {
            Event::Add(offers[i as usize % offers.len()].clone())
        };
        let was_add = matches!(event, Event::Add(_));
        let sent = std::time::Instant::now();
        let reply = client
            .send_event(&event)
            .map_err(|e| format!("request {i}: {e}"))?;
        latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        match reply {
            Reply::Ok { .. } if was_add => match reply.assigned_id() {
                Some(id) => owned.push(id),
                None => errors += 1,
            },
            Reply::Ok { .. } => {}
            Reply::Err { .. } => errors += 1,
        }
    }
    Ok(BombReport {
        latencies_ms,
        errors,
    })
}

/// The `recover` path: rebuild a killed `serve --journal` run from its
/// snapshot + journal suffix, print a recovery summary to stderr, and
/// answer the four query kinds in wire order on stdout — byte-identical
/// to what the uninterrupted run would have answered.
fn recover(rest: &[String]) -> ExitCode {
    let mut journal: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut kernel = Kernel::Auto;

    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kernel" => {
                kernel = match kernel_flag(&mut args) {
                    Ok(k) => k,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--journal" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --journal needs a path");
                    return ExitCode::FAILURE;
                };
                journal = Some(value.clone());
            }
            flag @ ("--shards" | "--threads" | "--seed") => {
                let n = match count_flag(flag, &mut args) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match flag {
                    "--shards" => shards = Some(n as usize),
                    "--threads" => threads = Some(n as usize),
                    _ => seed = Some(n),
                }
            }
            other => {
                eprintln!("error: unknown recover argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(journal) = journal else {
        eprintln!("error: recover needs --journal PATH\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let budget = match budget_for(threads) {
        Ok(b) => b.with_kernel(kernel),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = ServeConfig::default();
    if let Some(seed) = seed {
        config.seed = seed;
    }
    config.durability = Some(DurabilityConfig::new(journal));

    let (mut book, report) = match recover_book(&config, shards.unwrap_or(1), Engine::new(budget)) {
        Ok(recovered) => recovered,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "recovered {} events ({} bytes{}) from {}; replayed {}",
        report.journal_events,
        report.committed_bytes,
        if report.dropped_torn_tail {
            ", torn tail dropped"
        } else {
            ""
        },
        match report.snapshot_seq {
            Some(seq) => format!("snapshot seq {seq}"),
            None => "the empty book".to_owned(),
        },
        report.replayed,
    );
    for kind in QueryKind::all() {
        println!("{}", book.answer(kind));
    }
    ExitCode::SUCCESS
}

/// The `events` path: generate a deterministic JSONL event script from
/// the city workload ([`event_stream`]) with `--queries` query events
/// (cycling measure/aggregate/schedule/trade) spread evenly through the
/// stream — the input `flexctl serve` replays and CI diffs live-vs-batch.
fn events(rest: &[String]) -> ExitCode {
    let mut city: Option<usize> = None;
    let mut seed: u64 = 7;
    let mut churn_pct: f64 = 0.0;
    let mut queries: usize = 4;

    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--churn" => {
                let Some(value) = args.next() else {
                    eprintln!("error: --churn needs a value (percent of offers)");
                    return ExitCode::FAILURE;
                };
                let Ok(pct) = value.parse::<f64>() else {
                    eprintln!("error: --churn takes a number, got {value}");
                    return ExitCode::FAILURE;
                };
                if !pct.is_finite() || !(0.0..=100.0).contains(&pct) {
                    eprintln!("error: --churn is a percentage between 0 and 100, got {value}");
                    return ExitCode::FAILURE;
                }
                churn_pct = pct;
            }
            flag @ ("--city" | "--seed" | "--queries") => {
                let n = match count_flag(flag, &mut args) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match flag {
                    "--city" => city = Some(n as usize),
                    "--seed" => seed = n,
                    _ => queries = n as usize,
                }
            }
            other => {
                eprintln!("error: unknown events argument {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(households) = city else {
        eprintln!("error: events needs --city H\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let churn = churn_pct / 100.0;
    let total = event_stream_len(households, churn);
    // Queries go out every `stride` mutations (and any remainder at the
    // end), cycling the four kinds in wire order.
    let stride = if queries == 0 {
        usize::MAX
    } else {
        total.div_ceil(queries).max(1)
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut emitted_queries = 0usize;
    // A closed pipe (`flexctl events ... | head`) is a normal way to
    // consume a large stream generator: stop emitting, exit cleanly.
    let mut write = |line: String| writeln!(out, "{line}").is_ok();
    'emit: {
        for (i, event) in event_stream(seed, households, churn).enumerate() {
            if !write(Event::from(event).to_json_line()) {
                break 'emit;
            }
            if (i + 1) % stride == 0 && emitted_queries < queries {
                let kind = QueryKind::all()[emitted_queries % 4];
                if !write(Event::Query(kind).to_json_line()) {
                    break 'emit;
                }
                emitted_queries += 1;
            }
        }
        while emitted_queries < queries {
            let kind = QueryKind::all()[emitted_queries % 4];
            if !write(Event::Query(kind).to_json_line()) {
                break 'emit;
            }
            emitted_queries += 1;
        }
    }
    let _ = out.flush();
    ExitCode::SUCCESS
}

fn measure(fo: &FlexOffer, names: &[String]) -> ExitCode {
    println!("flex-offer: {fo}");
    let measures = match resolve_measures(names) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for m in measures {
        match m.of(fo) {
            Ok(v) => println!("{:<14} {v:.6}", m.short_name()),
            Err(e) => println!("{:<14} n/a ({e})", m.short_name()),
        }
    }
    ExitCode::SUCCESS
}

fn count(fo: &FlexOffer) -> ExitCode {
    match fo.unconstrained_assignment_count() {
        Some(n) => println!("unconstrained assignments (Def. 8): {n}"),
        None => println!(
            "unconstrained assignments (Def. 8): 2^{:.1} (overflows u128)",
            fo.log2_assignment_count()
        ),
    }
    match fo.constrained_assignment_count() {
        Some(n) => println!("valid assignments |L(f)|:           {n}"),
        None => println!(
            "valid assignments |L(f)|:           ~{:.3e}",
            fo.constrained_assignment_count_f64()
        ),
    }
    ExitCode::SUCCESS
}
